// Property suite: every application proxy (POP, SMG2000, Sweep3D, random
// sweep) under every timer must produce a causally consistent ground truth,
// a deterministic trace, and a trace the CLC can repair completely.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "analysis/clock_condition.hpp"
#include "sync/clc.hpp"
#include "sync/interpolation.hpp"
#include "workload/pop.hpp"
#include "workload/smg2000.hpp"
#include "workload/sweep.hpp"
#include "workload/sweep3d.hpp"

namespace chronosync {
namespace {

enum class App { Pop, Smg, Sweep3d, RandomSweep };
enum class TimerChoice { Tsc, Gettimeofday };

const char* app_name(App a) {
  switch (a) {
    case App::Pop: return "pop";
    case App::Smg: return "smg2000";
    case App::Sweep3d: return "sweep3d";
    case App::RandomSweep: return "sweep";
  }
  return "?";
}

AppRunResult run_app(App app, TimerChoice timer, std::uint64_t seed) {
  JobConfig job;
  Rng pin_rng(seed ^ 0xabcdefULL);
  job.placement = pinning::scheduler_default(clusters::xeon_rwth(), 8, pin_rng);
  job.timer = timer == TimerChoice::Tsc ? timer_specs::intel_tsc()
                                        : timer_specs::gettimeofday_ntp();
  job.seed = seed;

  switch (app) {
    case App::Pop: {
      PopConfig cfg;
      cfg.px = 4;
      cfg.py = 2;
      cfg.total_iterations = 40;
      cfg.traced_begin = 10;
      cfg.traced_end = 30;
      cfg.iter_compute = 500 * units::us;
      return run_pop(cfg, std::move(job));
    }
    case App::Smg: {
      SmgConfig cfg;
      cfg.px = 4;
      cfg.py = 2;
      cfg.levels = 3;
      cfg.iterations = 3;
      cfg.pre_sleep = 1.0;
      cfg.post_sleep = 1.0;
      cfg.level_compute = 200 * units::us;
      return run_smg(cfg, std::move(job));
    }
    case App::Sweep3d: {
      Sweep3dConfig cfg;
      cfg.px = 4;
      cfg.py = 2;
      cfg.iterations = 3;
      cfg.angles_per_block = 3;
      cfg.block_compute = 200 * units::us;
      return run_sweep3d(cfg, std::move(job));
    }
    case App::RandomSweep: {
      SweepConfig cfg;
      cfg.rounds = 60;
      cfg.gap_mean = 500 * units::us;
      cfg.collective_every = 15;
      return run_sweep(cfg, std::move(job));
    }
  }
  throw std::logic_error("unreachable");
}

using Param = std::tuple<App, TimerChoice, std::uint64_t>;

class WorkloadProperty : public testing::TestWithParam<Param> {
 protected:
  AppRunResult run() const {
    const auto [app, timer, seed] = GetParam();
    return run_app(app, timer, seed);
  }
};

TEST_P(WorkloadProperty, GroundTruthIsCausal) {
  AppRunResult res = run();
  ASSERT_GT(res.trace.total_events(), 0u);
  for (const auto& m : res.trace.match_messages()) {
    EXPECT_GE(res.trace.at(m.recv).true_ts,
              res.trace.at(m.send).true_ts +
                  res.trace.min_latency(m.send.proc, m.recv.proc) - 1e-12);
  }
  for (const auto& lm : derive_logical_messages(res.trace)) {
    EXPECT_GE(res.trace.at(lm.recv).true_ts,
              res.trace.at(lm.send).true_ts +
                  res.trace.min_latency(lm.send.proc, lm.recv.proc) - 1e-12);
  }
}

TEST_P(WorkloadProperty, TraceInvariantsHold) {
  AppRunResult res = run();
  EXPECT_NO_THROW(res.trace.validate());
  // Offsets measured at init and finalize for every rank.
  for (Rank r = 0; r < res.trace.ranks(); ++r) {
    EXPECT_EQ(res.offsets.of(r).size(), 2u);
  }
}

TEST_P(WorkloadProperty, ClcRepairsCompletely) {
  AppRunResult res = run();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto input =
      apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));
  const ClcResult clc = controlled_logical_clock(res.trace, schedule, input);
  EXPECT_EQ(check_clock_condition(res.trace, clc.corrected, msgs, logical).violations(), 0u);
}

TEST_P(WorkloadProperty, DeterministicAcrossRuns) {
  AppRunResult a = run();
  AppRunResult b = run();
  ASSERT_EQ(a.trace.total_events(), b.trace.total_events());
  for (Rank r = 0; r < a.trace.ranks(); ++r) {
    const auto& ea = a.trace.events(r);
    const auto& eb = b.trace.events(r);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      ASSERT_DOUBLE_EQ(ea[i].local_ts, eb[i].local_ts);
      ASSERT_EQ(ea[i].type, eb[i].type);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, WorkloadProperty,
    testing::Combine(testing::Values(App::Pop, App::Smg, App::Sweep3d, App::RandomSweep),
                     testing::Values(TimerChoice::Tsc, TimerChoice::Gettimeofday),
                     testing::Values<std::uint64_t>(1, 2)),
    [](const testing::TestParamInfo<Param>& tpi) {
      return std::string(app_name(std::get<0>(tpi.param))) +
             (std::get<1>(tpi.param) == TimerChoice::Tsc ? "_tsc" : "_gtod") + "_s" +
             std::to_string(std::get<2>(tpi.param));
    });

}  // namespace
}  // namespace chronosync
