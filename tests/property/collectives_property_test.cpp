// Property suite: every collective kind, across rank counts, must satisfy
// its flavour's happened-before semantics in ground truth and produce a
// complete, well-formed trace instance.
#include <gtest/gtest.h>

#include <tuple>

#include "mpisim/job.hpp"
#include "topology/cluster.hpp"
#include "trace/logical_messages.hpp"

namespace chronosync {
namespace {

using CollParam = std::tuple<CollectiveKind, int /*ranks*/>;

class CollectiveProperty : public testing::TestWithParam<CollParam> {
 protected:
  Trace run() const {
    const auto [kind, ranks] = GetParam();
    JobConfig cfg;
    cfg.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
    cfg.seed = 42;
    Job job(std::move(cfg));
    job.run([&, kind = kind](Proc& p) -> Coro<void> {
      // Random per-rank skew before the operation, like real imbalance.
      co_await p.compute(p.rng().uniform(0.0, 20e-6));
      switch (kind) {
        case CollectiveKind::Barrier: co_await p.barrier(); break;
        case CollectiveKind::Bcast: co_await p.bcast(1 % p.nranks(), 512); break;
        case CollectiveKind::Reduce: co_await p.reduce(0, 512); break;
        case CollectiveKind::Allreduce: co_await p.allreduce(64); break;
        case CollectiveKind::Gather: co_await p.gather(0, 256); break;
        case CollectiveKind::Scatter: co_await p.scatter(0, 256); break;
        case CollectiveKind::Allgather: co_await p.allgather(128); break;
        case CollectiveKind::Alltoall: co_await p.alltoall(64); break;
      }
    });
    return job.take_trace();
  }
};

TEST_P(CollectiveProperty, InstanceComplete) {
  const auto [kind, ranks] = GetParam();
  Trace t = run();
  const auto insts = t.collect_collectives();
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0].kind, kind);
  EXPECT_EQ(insts[0].begins.size(), static_cast<std::size_t>(ranks));
  EXPECT_EQ(insts[0].ends.size(), static_cast<std::size_t>(ranks));
}

TEST_P(CollectiveProperty, GroundTruthSatisfiesLogicalMessages) {
  Trace t = run();
  for (const auto& lm : derive_logical_messages(t)) {
    const Duration l_min = t.min_latency(lm.send.proc, lm.recv.proc);
    EXPECT_GE(t.at(lm.recv).true_ts, t.at(lm.send).true_ts + l_min - 1e-12)
        << to_string(t.at(lm.send).coll) << " " << lm.send.proc << "->" << lm.recv.proc;
  }
}

TEST_P(CollectiveProperty, EveryEndAfterOwnBegin) {
  Trace t = run();
  const auto insts = t.collect_collectives();
  for (const auto& begin : insts[0].begins) {
    for (const auto& end : insts[0].ends) {
      if (begin.proc != end.proc) continue;
      EXPECT_GT(t.at(end).true_ts, t.at(begin).true_ts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, CollectiveProperty,
    testing::Combine(testing::Values(CollectiveKind::Barrier, CollectiveKind::Bcast,
                                     CollectiveKind::Reduce, CollectiveKind::Allreduce,
                                     CollectiveKind::Gather, CollectiveKind::Scatter,
                                     CollectiveKind::Allgather, CollectiveKind::Alltoall),
                     testing::Values(2, 3, 4, 7, 8, 16)),
    [](const testing::TestParamInfo<CollParam>& tpi) {
      return to_string(std::get<0>(tpi.param)) + "_x" +
             std::to_string(std::get<1>(tpi.param));
    });

}  // namespace
}  // namespace chronosync
