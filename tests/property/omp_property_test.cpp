// Property suite: the OpenMP runtime model across thread counts and seeds —
// structural invariants, causal ground truth, and the OpenMP-CLC contract.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/omp_semantics.hpp"
#include "ompsim/omp_bench.hpp"
#include "sync/omp_clc.hpp"

namespace chronosync {
namespace {

using Param = std::tuple<int /*threads*/, std::uint64_t /*seed*/>;

class OmpProperty : public testing::TestWithParam<Param> {
 protected:
  OmpBenchResult run(int regions = 120) const {
    const auto [threads, seed] = GetParam();
    OmpBenchConfig cfg;
    cfg.threads = threads;
    cfg.regions = regions;
    cfg.seed = seed;
    return run_omp_benchmark(cfg);
  }
};

TEST_P(OmpProperty, EventStructurePerRegion) {
  const auto [threads, seed] = GetParam();
  const auto res = run();
  // Per region: fork + join + threads * (enter, barrier enter/exit, exit).
  EXPECT_EQ(res.trace.total_events(), 120u * (2 + 4u * static_cast<unsigned>(threads)));
  // Count forks = joins = regions.
  std::size_t forks = 0, joins = 0;
  for (const Event& e : res.trace.events(0)) {
    forks += e.type == EventType::Fork;
    joins += e.type == EventType::Join;
  }
  EXPECT_EQ(forks, 120u);
  EXPECT_EQ(joins, 120u);
}

TEST_P(OmpProperty, GroundTruthSemanticallyClean) {
  const auto res = run();
  const auto rep = check_omp_semantics(res.trace, TimestampArray::from_truth(res.trace));
  EXPECT_EQ(rep.with_any, 0u);
}

TEST_P(OmpProperty, PerThreadTimestampsMonotone) {
  const auto res = run();
  std::map<ThreadId, Time> last_local, last_true;
  for (const Event& e : res.trace.events(0)) {
    auto it = last_local.find(e.thread);
    if (it != last_local.end()) {
      EXPECT_GE(e.local_ts, it->second);
      EXPECT_GE(e.true_ts, last_true[e.thread]);
    }
    last_local[e.thread] = e.local_ts;
    last_true[e.thread] = e.true_ts;
  }
}

TEST_P(OmpProperty, OmpClcAlwaysRepairs) {
  const auto [threads, seed] = GetParam();
  const auto res = run();
  const Placement pl = omp_thread_placement(clusters::itanium_smp_node(), threads);
  const OmpClcResult fixed = omp_controlled_logical_clock(res.trace, pl);
  const auto after = check_omp_semantics(res.trace, fixed.corrected);
  EXPECT_EQ(after.with_any, 0u);
}

TEST_P(OmpProperty, DeterministicForSeed) {
  const auto a = run(30);
  const auto b = run(30);
  ASSERT_EQ(a.trace.total_events(), b.trace.total_events());
  for (std::size_t i = 0; i < a.trace.events(0).size(); ++i) {
    ASSERT_DOUBLE_EQ(a.trace.events(0)[i].local_ts, b.trace.events(0)[i].local_ts);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadsAndSeeds, OmpProperty,
                         testing::Combine(testing::Values(2, 4, 8, 12, 16),
                                          testing::Values<std::uint64_t>(1, 2, 3)),
                         [](const testing::TestParamInfo<Param>& tpi) {
                           return "t" + std::to_string(std::get<0>(tpi.param)) + "_s" +
                                  std::to_string(std::get<1>(tpi.param));
                         });

}  // namespace
}  // namespace chronosync
