// Property suite: every drift model must satisfy the DriftModel contract —
// integrated() is the running integral of drift(), starts at zero, is
// continuous, and the model is deterministic and query-order independent.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "clockmodel/drift_model.hpp"

namespace chronosync {
namespace {

struct ModelCase {
  std::string name;
  std::function<std::unique_ptr<DriftModel>(std::uint64_t seed)> make;
};

std::vector<ModelCase> model_cases() {
  return {
      {"constant",
       [](std::uint64_t) { return std::make_unique<ConstantDrift>(12 * units::ppm); }},
      {"piecewise",
       [](std::uint64_t) {
         return std::make_unique<PiecewiseConstantDrift>(
             std::vector<Time>{0.0, 100.0, 250.0, 1000.0},
             std::vector<double>{1e-6, -2e-6, 0.5e-6, 3e-6});
       }},
      {"random-walk",
       [](std::uint64_t seed) {
         return std::make_unique<RandomWalkDrift>(Rng(seed), 1e-6, 10.0, 2e-9, 1e-6);
       }},
      {"ornstein-uhlenbeck",
       [](std::uint64_t seed) {
         return std::make_unique<OrnsteinUhlenbeckDrift>(Rng(seed), 1e-6, 0.0, 0.01, 10.0,
                                                         2e-9);
       }},
      {"sinusoidal",
       [](std::uint64_t) { return std::make_unique<SinusoidalDrift>(1e-7, 600.0, 0.7); }},
      {"composite",
       [](std::uint64_t seed) {
         std::vector<std::unique_ptr<DriftModel>> parts;
         parts.push_back(std::make_unique<ConstantDrift>(5e-6));
         parts.push_back(std::make_unique<RandomWalkDrift>(Rng(seed), 0.0, 10.0, 1e-9, 1e-6));
         return std::make_unique<CompositeDrift>(std::move(parts));
       }},
      {"ntp",
       [](std::uint64_t seed) {
         NtpParams params;
         return std::make_unique<NtpDisciplinedDrift>(
             Rng(seed), std::make_unique<ConstantDrift>(20 * units::ppm), params);
       }},
  };
}

class DriftContract : public testing::TestWithParam<std::size_t> {
 protected:
  const ModelCase& c() const { return cases_[GetParam()]; }
  static std::vector<ModelCase> cases_;
};
std::vector<ModelCase> DriftContract::cases_ = model_cases();

TEST_P(DriftContract, IntegralStartsAtZero) {
  auto m = c().make(42);
  EXPECT_NEAR(m->integrated(0.0), 0.0, 1e-18);
}

TEST_P(DriftContract, IntegralIsRunningIntegralOfRate) {
  auto m = c().make(42);
  // Check integrated' == drift at many points via symmetric differences,
  // skipping points too close to a potential segment boundary.
  for (double t = 3.14; t < 2000.0; t += 97.3) {
    const double h = 1e-4;
    const double numeric = (m->integrated(t + h) - m->integrated(t - h)) / (2 * h);
    EXPECT_NEAR(numeric, m->drift(t), 1e-9) << c().name << " at t=" << t;
  }
}

TEST_P(DriftContract, IntegralIsContinuous) {
  auto m = c().make(42);
  for (double t = 1.0; t < 2000.0; t += 33.7) {
    const double before = m->integrated(t - 1e-9);
    const double after = m->integrated(t + 1e-9);
    EXPECT_NEAR(before, after, 1e-12) << c().name << " at t=" << t;
  }
}

TEST_P(DriftContract, DeterministicAndOrderIndependent) {
  auto a = c().make(7);
  auto b = c().make(7);
  (void)a.get()->integrated(3000.0);  // extend a far ahead first
  for (double t = 0.5; t < 3000.0; t += 211.0) {
    EXPECT_DOUBLE_EQ(a->drift(t), b->drift(t)) << c().name;
    EXPECT_DOUBLE_EQ(a->integrated(t), b->integrated(t)) << c().name;
  }
}

TEST_P(DriftContract, RatesStaySane) {
  auto m = c().make(42);
  for (double t = 0.0; t < 4000.0; t += 13.7) {
    EXPECT_LT(std::abs(m->drift(t)), 1e-3) << c().name;  // < 1000 ppm always
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, DriftContract,
                         testing::Range<std::size_t>(0, model_cases().size()),
                         [](const testing::TestParamInfo<std::size_t>& tpi) {
                           std::string name = model_cases()[tpi.param].name;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace chronosync
