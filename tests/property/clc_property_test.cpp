// Property suite: CLC invariants over a sweep of seeds, rank counts, and
// timer technologies.  For every configuration the algorithm must
//   1. remove every clock-condition violation (p2p and collective),
//   2. never move an event backwards relative to its input timestamp,
//   3. keep per-process timestamps monotone,
//   4. agree bit-exactly with the parallel replay implementation,
//   5. leave violation-free traces untouched.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/clock_condition.hpp"
#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/interpolation.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

enum class TimerChoice { Tsc, Gettimeofday, MpiWtime };

TimerSpec make_timer(TimerChoice c) {
  switch (c) {
    case TimerChoice::Tsc: return timer_specs::intel_tsc();
    case TimerChoice::Gettimeofday: return timer_specs::gettimeofday_ntp();
    case TimerChoice::MpiWtime: return timer_specs::mpi_wtime();
  }
  return timer_specs::perfect();
}

using ClcParam = std::tuple<std::uint64_t /*seed*/, int /*ranks*/, TimerChoice>;

class ClcProperty : public testing::TestWithParam<ClcParam> {
 protected:
  AppRunResult run() const {
    const auto [seed, ranks, timer] = GetParam();
    SweepConfig cfg;
    cfg.rounds = 150;
    cfg.gap_mean = 3.0;
    cfg.collective_every = 25;
    JobConfig job;
    job.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
    job.timer = make_timer(timer);
    job.seed = seed;
    return run_sweep(cfg, std::move(job));
  }
};

TEST_P(ClcProperty, RepairsEverythingWithoutRegression) {
  AppRunResult res = run();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto input =
      apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));

  const ClcResult clc = controlled_logical_clock(res.trace, schedule, input);

  // (1) no violations remain
  const auto rep = check_clock_condition(res.trace, clc.corrected, msgs, logical);
  EXPECT_EQ(rep.violations(), 0u);

  for (Rank r = 0; r < res.trace.ranks(); ++r) {
    const auto& in = input.of_rank(r);
    const auto& out = clc.corrected.of_rank(r);
    for (std::size_t i = 0; i < in.size(); ++i) {
      // (2) only forward moves
      EXPECT_GE(out[i], in[i] - 1e-12) << "rank " << r << " idx " << i;
      // (3) monotone per process
      if (i > 0) {
        EXPECT_GE(out[i], out[i - 1]) << "rank " << r << " idx " << i;
      }
    }
  }
}

TEST_P(ClcProperty, ParallelMatchesSequential) {
  AppRunResult res = run();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto input =
      apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));

  const ClcResult seq = controlled_logical_clock(res.trace, schedule, input);
  // Disable the oversubscription clamp so the property really runs 3
  // concurrent workers on these small generated traces.
  ClcOptions opt;
  opt.min_events_per_thread = 1;
  const ClcResult par = controlled_logical_clock_parallel(res.trace, schedule, input, opt, 3);
  EXPECT_EQ(seq.violations_repaired, par.violations_repaired);
  for (Rank r = 0; r < res.trace.ranks(); ++r) {
    for (std::uint32_t i = 0; i < res.trace.events(r).size(); ++i) {
      ASSERT_DOUBLE_EQ(seq.corrected.at({r, i}), par.corrected.at({r, i}));
    }
  }
}

TEST_P(ClcProperty, GroundTruthIsFixedPoint) {
  AppRunResult res = run();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto truth = TimestampArray::from_truth(res.trace);

  // (5) the causal ground truth has no violations, so CLC must be identity.
  const ClcResult clc = controlled_logical_clock(res.trace, schedule, truth);
  EXPECT_EQ(clc.violations_repaired, 0u);
  for (Rank r = 0; r < res.trace.ranks(); ++r) {
    for (std::uint32_t i = 0; i < res.trace.events(r).size(); ++i) {
      ASSERT_DOUBLE_EQ(clc.corrected.at({r, i}), truth.at({r, i}));
    }
  }
}

TEST_P(ClcProperty, BackwardAmortizationNeverReintroducesViolations) {
  // The pre-jump linear ramp redistributes each jump over earlier events.
  // Whatever slope is chosen, it must never (a) recreate a clock-condition
  // violation the forward pass just repaired, nor (b) invert the local order
  // of any process — across random traces, seeds, and timer technologies.
  AppRunResult res = run();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto input =
      apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));

  for (const double slope : {0.01, 0.05, 0.5}) {
    ClcOptions opt;
    opt.backward_amortization = true;
    opt.backward_slope = slope;
    const ClcResult clc = controlled_logical_clock(res.trace, schedule, input, opt);

    const auto rep = check_clock_condition(res.trace, clc.corrected, msgs, logical);
    EXPECT_EQ(rep.violations(), 0u) << "slope=" << slope;

    for (Rank r = 0; r < res.trace.ranks(); ++r) {
      const auto& out = clc.corrected.of_rank(r);
      for (std::size_t i = 1; i < out.size(); ++i) {
        ASSERT_GE(out[i], out[i - 1])
            << "slope=" << slope << " rank=" << r << " idx=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClcProperty,
    testing::Combine(testing::Values<std::uint64_t>(1, 2, 3),
                     testing::Values(2, 5, 8),
                     testing::Values(TimerChoice::Tsc, TimerChoice::Gettimeofday,
                                     TimerChoice::MpiWtime)));

}  // namespace
}  // namespace chronosync
