#include <gtest/gtest.h>

#include <cmath>

#include "measure/latency_probe.hpp"
#include "measure/offset_probe.hpp"
#include "mpisim/job.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

JobConfig probe_job(int ranks, TimerSpec timer) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  cfg.timer = std::move(timer);
  cfg.seed = 42;
  return cfg;
}

TEST(OffsetStore, AddAndRetrieve) {
  OffsetStore store(3);
  store.add(1, {10.0, 0.5, 9e-6});
  store.add(1, {20.0, 0.6, 9e-6});
  EXPECT_EQ(store.of(1).size(), 2u);
  EXPECT_DOUBLE_EQ(store.of(1)[0].offset, 0.5);
  EXPECT_TRUE(store.of(2).empty());
  EXPECT_THROW(store.of(3), std::invalid_argument);
  EXPECT_THROW(store.add(-1, {}), std::invalid_argument);
}

TEST(OffsetProbe, MeasuresKnownStaticOffsets) {
  // With drift-free clocks and known constant offsets, Cristian's method
  // must recover the offsets to within the network asymmetry (<< 5 us).
  TimerSpec spec = timer_specs::perfect();
  spec.node_offset_sigma = 10 * units::ms;  // big static offsets
  Job job(probe_job(4, spec));
  OffsetStore store(4);
  job.run([&](Proc& p) { return probe_offsets(p, store, 20); });

  for (Rank w = 1; w < 4; ++w) {
    ASSERT_EQ(store.of(w).size(), 1u);
    // True offset is master.local - worker.local (drift-free: constant).
    const Duration truth =
        job.clocks().clock(0).local_time(0.0) - job.clocks().clock(w).local_time(0.0);
    EXPECT_NEAR(store.of(w)[0].offset, truth, 5 * units::us);
  }
}

TEST(OffsetProbe, RttIsPlausible) {
  Job job(probe_job(2, timer_specs::perfect()));
  OffsetStore store(2);
  job.run([&](Proc& p) { return probe_offsets(p, store, 10); });
  const Duration rtt = store.of(1)[0].rtt;
  EXPECT_GT(rtt, 2 * 4.29 * units::us);
  EXPECT_LT(rtt, 6 * 4.29 * units::us);
}

TEST(OffsetProbe, MasterEntryIsZero) {
  Job job(probe_job(2, timer_specs::perfect()));
  OffsetStore store(2);
  job.run([&](Proc& p) { return probe_offsets(p, store, 5); });
  ASSERT_EQ(store.of(0).size(), 1u);
  EXPECT_DOUBLE_EQ(store.of(0)[0].offset, 0.0);
}

TEST(OffsetProbe, DoesNotTrace) {
  Job job(probe_job(3, timer_specs::perfect()));
  OffsetStore store(3);
  job.run([&](Proc& p) { return probe_offsets(p, store, 5); });
  EXPECT_EQ(job.take_trace().total_events(), 0u);
}

TEST(DirectProbe, RecoversStaticOffset) {
  auto drift = std::make_shared<ConstantDrift>(0.0);
  SimClock master(0.0, drift, 0.0, {}, Rng(1));
  SimClock worker(-3 * units::ms, drift, 0.0, {}, Rng(2));
  const HierarchicalLatencyModel lat = latencies::xeon_infiniband();
  Rng rng(5);
  const OffsetMeasurement m =
      direct_probe(master, worker, lat, CommDomain::CrossNode, 100.0, 20, rng);
  EXPECT_NEAR(m.offset, 3 * units::ms, 2 * units::us);
  EXPECT_GT(m.worker_time, 0.0);
}

TEST(DirectProbe, MorePingsTightenTheEstimate) {
  auto drift = std::make_shared<ConstantDrift>(0.0);
  const HierarchicalLatencyModel lat = latencies::xeon_infiniband();
  double err1 = 0.0, err20 = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    // Fresh clocks per probe: read() is stateful (monotone clamping).
    Rng r1(100 + trial), r20(200 + trial);
    {
      SimClock master(0.0, drift, 0.0, {}, Rng(1));
      SimClock worker(0.0, drift, 0.0, {}, Rng(2));
      err1 +=
          std::abs(direct_probe(master, worker, lat, CommDomain::CrossNode, 10.0, 1, r1).offset);
    }
    {
      SimClock master(0.0, drift, 0.0, {}, Rng(1));
      SimClock worker(0.0, drift, 0.0, {}, Rng(2));
      err20 += std::abs(
          direct_probe(master, worker, lat, CommDomain::CrossNode, 10.0, 20, r20).offset);
    }
  }
  EXPECT_LT(err20, err1);
}

TEST(LatencyProbe, P2PMatchesTableIIInterNode) {
  Job job(probe_job(2, timer_specs::perfect()));
  LatencyProbeConfig cfg;
  cfg.estimates = 5;
  cfg.reps_per_estimate = 200;
  const auto res = measure_p2p_latency(job, cfg);
  EXPECT_EQ(res.one_way.count(), 5u);
  // One-way estimate includes per-message overheads; must sit a little above
  // the 4.29 us floor.
  EXPECT_GT(res.one_way.mean(), 4.29 * units::us);
  EXPECT_LT(res.one_way.mean(), 8 * units::us);
  // The paper's tiny std-devs come from averaging: ours must also be far
  // below the mean.
  EXPECT_LT(res.one_way.stddev(), 0.1 * res.one_way.mean());
}

TEST(LatencyProbe, HierarchyOrdering) {
  LatencyProbeConfig cfg;
  cfg.estimates = 3;
  cfg.reps_per_estimate = 100;

  JobConfig node_cfg;
  node_cfg.placement = pinning::inter_chip(clusters::xeon_rwth(), 2);
  Job node_job(std::move(node_cfg));
  const double inter_chip = measure_p2p_latency(node_job, cfg).one_way.mean();

  JobConfig core_cfg;
  core_cfg.placement = pinning::inter_core(clusters::xeon_rwth(), 2);
  Job core_job(std::move(core_cfg));
  const double inter_core = measure_p2p_latency(core_job, cfg).one_way.mean();

  Job net_job(probe_job(2, timer_specs::perfect()));
  const double inter_node = measure_p2p_latency(net_job, cfg).one_way.mean();

  EXPECT_LT(inter_core, inter_chip);
  EXPECT_LT(inter_chip, inter_node);
}

TEST(LatencyProbe, AllreduceAboveP2P) {
  Job job(probe_job(4, timer_specs::perfect()));
  LatencyProbeConfig cfg;
  cfg.estimates = 3;
  cfg.reps_per_estimate = 50;
  const auto res = measure_allreduce_latency(job, cfg);
  EXPECT_GT(res.one_way.mean(), 4.29 * units::us);
  EXPECT_LT(res.one_way.mean(), 40 * units::us);
}

}  // namespace
}  // namespace chronosync
