#include "measure/periodic.hpp"

#include <gtest/gtest.h>

#include "mpisim/job.hpp"
#include "sync/interpolation.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

JobConfig small_job(int ranks) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  cfg.timer = timer_specs::gettimeofday_ntp();
  cfg.seed = 42;
  return cfg;
}

TEST(PeriodicProbes, RunsBatchesAndPhases) {
  Job job(small_job(4));
  OffsetStore store(4);
  std::vector<int> phases_seen(4, 0);
  job.run([&](Proc& p) -> Coro<void> {
    co_await with_periodic_probes(p, store, 5, [&](Proc& q, int) -> Coro<void> {
      ++phases_seen[static_cast<std::size_t>(q.rank())];
      co_await q.compute(1.0);
    });
  });
  for (int c : phases_seen) EXPECT_EQ(c, 4);  // batches - 1 phases
  for (Rank r = 0; r < 4; ++r) EXPECT_EQ(store.of(r).size(), 5u);
}

TEST(PeriodicProbes, FeedsPiecewiseInterpolation) {
  Job job(small_job(4));
  OffsetStore store(4);
  job.run([&](Proc& p) -> Coro<void> {
    co_await with_periodic_probes(p, store, 4, [](Proc& q, int) -> Coro<void> {
      co_await q.compute(200.0);
    });
  });
  const PiecewiseInterpolation pw = PiecewiseInterpolation::from_store(store);
  // Four strictly increasing knots per rank: correction evaluates everywhere.
  for (Rank r = 0; r < 4; ++r) {
    EXPECT_NO_THROW((void)pw.correct(r, 300.0));
  }
}

TEST(PeriodicProbes, RejectsFewerThanTwoBatches) {
  Job job(small_job(2));
  OffsetStore store(2);
  EXPECT_THROW(job.run([&](Proc& p) -> Coro<void> {
    co_await with_periodic_probes(p, store, 1, [](Proc& q, int) -> Coro<void> {
      co_await q.compute(1.0);
    });
  }),
               std::invalid_argument);
}

TEST(PeriodicProbes, PhaseIndexIncrements) {
  Job job(small_job(2));
  OffsetStore store(2);
  std::vector<int> seen;
  job.run([&](Proc& p) -> Coro<void> {
    co_await with_periodic_probes(p, store, 4, [&](Proc& q, int phase) -> Coro<void> {
      if (q.rank() == 0) seen.push_back(phase);
      co_await q.compute(0.1);
    });
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace chronosync
