#include "analysis/order.hpp"

#include <gtest/gtest.h>

#include "sync/clc.hpp"
#include "sync/interpolation.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

AppRunResult drifting_run() {
  SweepConfig cfg;
  cfg.rounds = 150;
  cfg.gap_mean = 2.0;
  cfg.collective_every = 30;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 6);
  job.timer = timer_specs::intel_tsc();
  job.seed = 13;
  return run_sweep(cfg, std::move(job));
}

TEST(OrderConsistency, TruthIsPerfectlyOrdered) {
  auto res = drifting_run();
  const auto oc = order_consistency(res.trace, TimestampArray::from_truth(res.trace));
  EXPECT_GT(oc.pairs_sampled, 1000u);
  EXPECT_EQ(oc.misordered, 0u);
}

TEST(OrderConsistency, RawClocksHeavilyMisordered) {
  auto res = drifting_run();
  const auto oc = order_consistency(res.trace, TimestampArray::from_local(res.trace));
  EXPECT_GT(oc.misordered_fraction(), 0.01);
  // Among immediate neighbours (the pairs a timeline actually juxtaposes),
  // ~0.5 s offsets scramble the order almost completely.
  const auto close = order_consistency(res.trace, TimestampArray::from_local(res.trace),
                                       20000, 1, 1e-7, /*neighborhood=*/4);
  EXPECT_GT(close.misordered_fraction(), 0.2);
  EXPECT_GT(close.misordered_fraction(), oc.misordered_fraction());
}

TEST(OrderConsistency, CorrectionImprovesOrdering) {
  auto res = drifting_run();
  const auto raw = order_consistency(res.trace, TimestampArray::from_local(res.trace));
  const auto interp =
      apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));
  const auto fixed = order_consistency(res.trace, interp);
  EXPECT_LT(fixed.misordered_fraction(), raw.misordered_fraction() / 10.0);
}

TEST(OrderConsistency, ClcDoesNotDegradeOrdering) {
  auto res = drifting_run();
  const auto interp =
      apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const ClcResult clc = controlled_logical_clock(res.trace, schedule, interp);
  const auto before = order_consistency(res.trace, interp);
  const auto after = order_consistency(res.trace, clc.corrected);
  EXPECT_LE(after.misordered_fraction(), before.misordered_fraction() * 1.2 + 1e-3);
}

TEST(OrderConsistency, ResolutionSkipsTies) {
  auto res = drifting_run();
  const auto coarse =
      order_consistency(res.trace, TimestampArray::from_truth(res.trace), 5000, 1, 1.0);
  const auto fine =
      order_consistency(res.trace, TimestampArray::from_truth(res.trace), 5000, 1, 1e-9);
  EXPECT_LT(coarse.pairs_sampled, fine.pairs_sampled);
}

TEST(OrderConsistency, DeterministicForSeed) {
  auto res = drifting_run();
  const auto a = order_consistency(res.trace, TimestampArray::from_local(res.trace), 5000, 7);
  const auto b = order_consistency(res.trace, TimestampArray::from_local(res.trace), 5000, 7);
  EXPECT_EQ(a.misordered, b.misordered);
  EXPECT_EQ(a.pairs_sampled, b.pairs_sampled);
}

TEST(OrderConsistency, EmptyTraceSafe) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {1e-6, 1e-6, 1e-6}, "test");
  const auto oc = order_consistency(t, TimestampArray::from_local(t));
  EXPECT_EQ(oc.pairs_sampled, 0u);
  EXPECT_DOUBLE_EQ(oc.misordered_fraction(), 0.0);
}

}  // namespace
}  // namespace chronosync
