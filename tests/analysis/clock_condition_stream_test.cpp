#include "analysis/clock_condition_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "../testutil/random_trace.hpp"
#include "analysis/clock_condition.hpp"
#include "topology/cluster.hpp"
#include "trace/io_util.hpp"
#include "trace/otf_text.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_io_error.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

void expect_reports_equal(const ClockConditionReport& a, const ClockConditionReport& b) {
  EXPECT_EQ(a.p2p_messages, b.p2p_messages);
  EXPECT_EQ(a.p2p_reversed, b.p2p_reversed);
  EXPECT_EQ(a.p2p_violations, b.p2p_violations);
  EXPECT_DOUBLE_EQ(a.p2p_worst, b.p2p_worst);
  EXPECT_EQ(a.logical_messages, b.logical_messages);
  EXPECT_EQ(a.logical_reversed, b.logical_reversed);
  EXPECT_EQ(a.logical_violations, b.logical_violations);
  EXPECT_DOUBLE_EQ(a.logical_worst, b.logical_worst);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.message_events, b.message_events);
}

TEST(ClockConditionStream, RealWorkloadStreamedEqualsInMemory) {
  // A sweep run produces a trace with real message and collective traffic.
  SweepConfig cfg;
  cfg.rounds = 30;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = 5;
  AppRunResult res = run_sweep(cfg, std::move(job));

  std::stringstream buf;
  write_trace_v2(res.trace, buf, /*events_per_chunk=*/64);
  TraceReader reader(buf);
  const auto streamed = scan_clock_condition(reader);
  const auto in_memory =
      check_clock_condition(res.trace, TimestampArray::from_local(res.trace));
  EXPECT_GT(streamed.p2p_messages, 0u);
  expect_reports_equal(streamed, in_memory);
}

TEST(ClockConditionStream, V2FileIsScannedStreamed) {
  const std::string path = testing::TempDir() + "/cs_ccstream_v2.bin";
  const Trace t = testutil::random_trace(9);
  write_trace_v2_file(t, path);
  const auto streamed = scan_clock_condition_file(path);
  const auto in_memory = check_clock_condition(t, TimestampArray::from_local(t));
  expect_reports_equal(streamed, in_memory);
  std::remove(path.c_str());
}

TEST(ClockConditionStream, V1FileFallsBackToInMemoryLoad) {
  const std::string path = testing::TempDir() + "/cs_ccstream_v1.bin";
  const Trace t = testutil::random_trace(10);
  write_trace_file(t, path);  // legacy v1 container
  const auto scanned = scan_clock_condition_file(path);
  const auto in_memory = check_clock_condition(t, TimestampArray::from_local(t));
  expect_reports_equal(scanned, in_memory);
  std::remove(path.c_str());
}

TEST(ClockConditionStream, BacklogHighWaterTracksPairDistanceNotMessageCount) {
  // Chain traffic: rank r sends kMsgs messages to rank r+1.  Each rank's
  // receives (retiring the previous hop) come before its sends (opening the
  // next hop), so while the completed-message total grows with every hop, at
  // most one hop's worth of entries is ever half-open.  Before messages were
  // erased eagerly, the map high-water equaled the total message count.
  constexpr int kRanks = 4;
  constexpr std::size_t kMsgs = 10;
  Trace t(pinning::block(clusters::xeon_rwth(), kRanks), {1e-7, 1e-6, 5e-6}, "chain");
  for (Rank r = 0; r < kRanks; ++r) {
    Time now = 1.0 + r;
    for (std::size_t i = 0; r > 0 && i < kMsgs; ++i) {
      Event e;
      e.type = EventType::Recv;
      e.peer = r - 1;
      e.msg_id = 1000 * (r - 1) + static_cast<std::int64_t>(i);
      e.local_ts = e.true_ts = now += 1e-4;
      t.events(r).push_back(e);
    }
    for (std::size_t i = 0; r + 1 < kRanks && i < kMsgs; ++i) {
      Event e;
      e.type = EventType::Send;
      e.peer = r + 1;
      e.msg_id = 1000 * r + static_cast<std::int64_t>(i);
      e.local_ts = e.true_ts = now += 1e-4;
      t.events(r).push_back(e);
    }
  }

  std::stringstream buf;
  write_trace_v2(t, buf);
  TraceReader reader(buf);
  ScanStats stats;
  const auto rep = scan_clock_condition(reader, &stats);
  EXPECT_EQ(rep.p2p_messages, (kRanks - 1) * kMsgs);
  EXPECT_EQ(stats.peak_outstanding_messages, kMsgs);
}

TEST(ClockConditionStream, PipeFedStreamsScanWithoutSeeking) {
  // A PrefixedStreambuf does not support seeking, like a pipe: dispatch must
  // sniff the header without tellg/seekg on any of the three formats.
  const Trace t = testutil::random_trace(12);

  std::stringstream v2;
  write_trace_v2(t, v2);
  traceio::PrefixedStreambuf v2_pipe("", v2);
  std::istream v2_in(&v2_pipe);
  const auto in_memory = check_clock_condition(t, TimestampArray::from_local(t));
  expect_reports_equal(scan_clock_condition(v2_in), in_memory);

  std::stringstream text;
  write_text_trace(t, text);
  traceio::PrefixedStreambuf text_pipe("", text);
  std::istream text_in(&text_pipe);
  expect_reports_equal(scan_clock_condition(text_in), in_memory);

  std::stringstream v1;
  write_trace(t, v1);
  traceio::PrefixedStreambuf v1_pipe("", v1);
  std::istream v1_in(&v1_pipe);
  expect_reports_equal(scan_clock_condition(v1_in), in_memory);
}

TEST(ClockConditionStream, TinyTextTraceScansFromFile) {
  // An event-free text trace is barely larger than the 8-byte sniff window;
  // the dispatcher used to reject anything it could not re-read from the
  // start.  It must reach the text reader and return an all-zero report.
  const std::string path = testing::TempDir() + "/cs_ccstream_tiny.txt";
  {
    std::ofstream f(path);
    f << "CSTXT 1\nTIMER t\nLATENCY 1e-7 1e-6 5e-6\nRANK 0 0 0 0\n";
  }
  const auto rep = scan_clock_condition_file(path);
  EXPECT_EQ(rep.total_events, 0u);
  EXPECT_EQ(rep.p2p_messages, 0u);
  std::remove(path.c_str());

  // Sub-8-byte files are no longer misreported as truncated v2 containers:
  // the text reader sees them from offset zero and reports its own error.
  const std::string bad = testing::TempDir() + "/cs_ccstream_bad.txt";
  {
    std::ofstream f(bad);
    f << "CSTXT";
  }
  try {
    scan_clock_condition_file(bad);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_NE(e.kind(), TraceIoErrorKind::Truncated) << e.what();
  }
  std::remove(bad.c_str());
}

TEST(ClockConditionStream, DuplicateRootEventsAgreeWithInMemory) {
  // Malformed instances where the root rank recorded its collective twice:
  // both the streamed scanner and derive_logical_messages must pick the same
  // representative (the first recorded root event), so the reports agree.
  Trace t(pinning::block(clusters::xeon_rwth(), 3), {1e-7, 1e-6, 5e-6}, "dup-root");
  auto ev = [](EventType type, CollectiveKind kind, std::int64_t id, Time ts) {
    Event e;
    e.type = type;
    e.coll = kind;
    e.coll_id = id;
    e.root = 0;
    e.local_ts = e.true_ts = ts;
    return e;
  };
  // Bcast (OneToN), root begin duplicated: first-match begin at t=5.0 makes
  // both non-root ends (2.0, 2.5) reversed; last-wins (t=1.0) would make
  // neither.  Counts stay balanced (4 begins, 4 ends) so it is not partial.
  t.events(0).push_back(ev(EventType::CollBegin, CollectiveKind::Bcast, 1, 5.0));
  t.events(0).push_back(ev(EventType::CollBegin, CollectiveKind::Bcast, 1, 5.5));
  t.events(0).push_back(ev(EventType::CollEnd, CollectiveKind::Bcast, 1, 5.6));
  t.events(0).push_back(ev(EventType::CollEnd, CollectiveKind::Bcast, 1, 5.7));
  // Reduce (NToOne), root end duplicated: first-match end at t=6.5 precedes
  // the non-root begins (7.0), so both edges are reversed; last-wins (9.0)
  // would accept them.
  t.events(0).push_back(ev(EventType::CollBegin, CollectiveKind::Reduce, 2, 6.0));
  t.events(0).push_back(ev(EventType::CollBegin, CollectiveKind::Reduce, 2, 6.1));
  t.events(0).push_back(ev(EventType::CollEnd, CollectiveKind::Reduce, 2, 6.5));
  t.events(0).push_back(ev(EventType::CollEnd, CollectiveKind::Reduce, 2, 9.0));
  for (Rank r = 1; r < 3; ++r) {
    t.events(r).push_back(ev(EventType::CollBegin, CollectiveKind::Bcast, 1, 1.0));
    t.events(r).push_back(ev(EventType::CollEnd, CollectiveKind::Bcast, 1, 2.0 + 0.5 * r));
    t.events(r).push_back(ev(EventType::CollBegin, CollectiveKind::Reduce, 2, 7.0));
    t.events(r).push_back(ev(EventType::CollEnd, CollectiveKind::Reduce, 2, 7.5));
  }

  std::stringstream buf;
  write_trace_v2(t, buf);
  TraceReader reader(buf);
  const auto streamed = scan_clock_condition(reader);
  const auto in_memory = check_clock_condition(t, TimestampArray::from_local(t));
  expect_reports_equal(streamed, in_memory);
  // Pins first-match: the late duplicates would yield zero reversed edges.
  EXPECT_EQ(streamed.logical_reversed, 4u);
}

TEST(ClockConditionStream, MissingFileThrowsIoError) {
  try {
    scan_clock_condition_file("/nonexistent/path/stream.bin");
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Io);
  }
}

}  // namespace
}  // namespace chronosync
