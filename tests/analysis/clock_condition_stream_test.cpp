#include "analysis/clock_condition_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "../testutil/random_trace.hpp"
#include "analysis/clock_condition.hpp"
#include "topology/cluster.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_io_error.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

void expect_reports_equal(const ClockConditionReport& a, const ClockConditionReport& b) {
  EXPECT_EQ(a.p2p_messages, b.p2p_messages);
  EXPECT_EQ(a.p2p_reversed, b.p2p_reversed);
  EXPECT_EQ(a.p2p_violations, b.p2p_violations);
  EXPECT_DOUBLE_EQ(a.p2p_worst, b.p2p_worst);
  EXPECT_EQ(a.logical_messages, b.logical_messages);
  EXPECT_EQ(a.logical_reversed, b.logical_reversed);
  EXPECT_EQ(a.logical_violations, b.logical_violations);
  EXPECT_DOUBLE_EQ(a.logical_worst, b.logical_worst);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.message_events, b.message_events);
}

TEST(ClockConditionStream, RealWorkloadStreamedEqualsInMemory) {
  // A sweep run produces a trace with real message and collective traffic.
  SweepConfig cfg;
  cfg.rounds = 30;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = 5;
  AppRunResult res = run_sweep(cfg, std::move(job));

  std::stringstream buf;
  write_trace_v2(res.trace, buf, /*events_per_chunk=*/64);
  TraceReader reader(buf);
  const auto streamed = scan_clock_condition(reader);
  const auto in_memory =
      check_clock_condition(res.trace, TimestampArray::from_local(res.trace));
  EXPECT_GT(streamed.p2p_messages, 0u);
  expect_reports_equal(streamed, in_memory);
}

TEST(ClockConditionStream, V2FileIsScannedStreamed) {
  const std::string path = testing::TempDir() + "/cs_ccstream_v2.bin";
  const Trace t = testutil::random_trace(9);
  write_trace_v2_file(t, path);
  const auto streamed = scan_clock_condition_file(path);
  const auto in_memory = check_clock_condition(t, TimestampArray::from_local(t));
  expect_reports_equal(streamed, in_memory);
  std::remove(path.c_str());
}

TEST(ClockConditionStream, V1FileFallsBackToInMemoryLoad) {
  const std::string path = testing::TempDir() + "/cs_ccstream_v1.bin";
  const Trace t = testutil::random_trace(10);
  write_trace_file(t, path);  // legacy v1 container
  const auto scanned = scan_clock_condition_file(path);
  const auto in_memory = check_clock_condition(t, TimestampArray::from_local(t));
  expect_reports_equal(scanned, in_memory);
  std::remove(path.c_str());
}

TEST(ClockConditionStream, MissingFileThrowsIoError) {
  try {
    scan_clock_condition_file("/nonexistent/path/stream.bin");
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Io);
  }
}

}  // namespace
}  // namespace chronosync
