#include <gtest/gtest.h>

#include "analysis/clock_condition.hpp"
#include "analysis/deviation.hpp"
#include "analysis/interval_stats.hpp"
#include "analysis/omp_semantics.hpp"
#include "sync/offset_alignment.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Event make_event(EventType ty, Time t, std::int64_t id = -1, Rank peer = -1) {
  Event e;
  e.type = ty;
  e.local_ts = e.true_ts = t;
  e.msg_id = id;
  e.peer = peer;
  return e;
}

TEST(ClockCondition, CountsReversedAndViolated) {
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  // msg 0: consistent.  msg 1: violated but not reversed.  msg 2: reversed.
  trace.events(0).push_back(make_event(EventType::Send, 1.0, 0, 1));
  trace.events(0).push_back(make_event(EventType::Send, 2.0, 1, 1));
  trace.events(0).push_back(make_event(EventType::Send, 3.0, 2, 1));
  trace.events(1).push_back(make_event(EventType::Recv, 1.001, 0, 0));
  trace.events(1).push_back(make_event(EventType::Recv, 2.000001, 1, 0));  // < l_min after send
  trace.events(1).push_back(make_event(EventType::Recv, 2.9, 2, 0));       // before send

  const auto rep = check_clock_condition(trace, TimestampArray::from_local(trace));
  EXPECT_EQ(rep.p2p_messages, 3u);
  EXPECT_EQ(rep.p2p_reversed, 1u);
  EXPECT_EQ(rep.p2p_violations, 2u);
  EXPECT_NEAR(rep.p2p_worst, 0.1 + 4.29e-6, 1e-6);
  EXPECT_NEAR(rep.p2p_reversed_pct(), 100.0 / 3.0, 1e-9);
  EXPECT_EQ(rep.total_events, 6u);
  EXPECT_EQ(rep.message_events, 6u);
  EXPECT_DOUBLE_EQ(rep.message_event_pct(), 100.0);
}

TEST(ClockCondition, LogicalMessagesChecked) {
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  for (Rank r = 0; r < 2; ++r) {
    Event b = make_event(EventType::CollBegin, r == 0 ? 1.0 : 0.9);
    b.coll = CollectiveKind::Barrier;
    b.coll_id = 0;
    Event e = make_event(EventType::CollEnd, r == 0 ? 1.1 : 0.95);
    e.coll = CollectiveKind::Barrier;
    e.coll_id = 0;
    trace.events(r).push_back(b);
    trace.events(r).push_back(e);
  }
  const auto rep = check_clock_condition(trace, TimestampArray::from_local(trace));
  EXPECT_EQ(rep.logical_messages, 2u);
  // rank1's end (0.95) before rank0's begin (1.0): reversed.
  EXPECT_EQ(rep.logical_reversed, 1u);
  EXPECT_EQ(rep.logical_violations, 1u);
  EXPECT_DOUBLE_EQ(rep.logical_reversed_pct(), 50.0);
  EXPECT_DOUBLE_EQ(rep.combined_reversed_pct(), 50.0);
}

TEST(ClockCondition, ScanOverloadMatchesMessageListPath) {
  // The single-pass scan over an already-built ReplaySchedule's CSR edges
  // must reproduce the message-matching overload field for field — p2p and
  // logical alike.
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  trace.events(0).push_back(make_event(EventType::Send, 1.0, 0, 1));
  trace.events(0).push_back(make_event(EventType::Send, 2.0, 1, 1));
  trace.events(0).push_back(make_event(EventType::Send, 3.0, 2, 1));
  trace.events(1).push_back(make_event(EventType::Recv, 1.001, 0, 0));
  trace.events(1).push_back(make_event(EventType::Recv, 2.000001, 1, 0));
  trace.events(1).push_back(make_event(EventType::Recv, 2.9, 2, 0));
  for (Rank r = 0; r < 2; ++r) {
    Event b = make_event(EventType::CollBegin, r == 0 ? 4.0 : 3.9);
    b.coll = CollectiveKind::Barrier;
    b.coll_id = 0;
    Event e = make_event(EventType::CollEnd, r == 0 ? 4.1 : 3.95);
    e.coll = CollectiveKind::Barrier;
    e.coll_id = 0;
    trace.events(r).push_back(b);
    trace.events(r).push_back(e);
  }

  const auto msgs = trace.match_messages();
  const auto logical = derive_logical_messages(trace);
  const ReplaySchedule schedule(trace, msgs, logical);
  const auto ts = TimestampArray::from_local(trace);

  const auto full = check_clock_condition(trace, ts, msgs, logical);
  const auto scan = check_clock_condition(trace, ts, schedule);
  EXPECT_EQ(scan.p2p_messages, full.p2p_messages);
  EXPECT_EQ(scan.p2p_reversed, full.p2p_reversed);
  EXPECT_EQ(scan.p2p_violations, full.p2p_violations);
  EXPECT_DOUBLE_EQ(scan.p2p_worst, full.p2p_worst);
  EXPECT_EQ(scan.logical_messages, full.logical_messages);
  EXPECT_EQ(scan.logical_reversed, full.logical_reversed);
  EXPECT_EQ(scan.logical_violations, full.logical_violations);
  EXPECT_DOUBLE_EQ(scan.logical_worst, full.logical_worst);
  EXPECT_EQ(scan.total_events, full.total_events);
  EXPECT_EQ(scan.message_events, full.message_events);
}

TEST(ClockCondition, EmptyTraceIsClean) {
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  const auto rep = check_clock_condition(trace, TimestampArray::from_local(trace));
  EXPECT_EQ(rep.violations(), 0u);
  EXPECT_DOUBLE_EQ(rep.p2p_reversed_pct(), 0.0);
}

TEST(Deviation, PerfectClocksGiveZero) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 3);
  ClockEnsemble ens(pl, timer_specs::perfect(), RngTree(1));
  IdentityCorrection id;
  const auto s = sample_deviations(ens, id, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(max_abs_deviation(s), 0.0);
  EXPECT_LT(first_exceedance(s, 1e-9), 0.0);
}

TEST(Deviation, DriftingClocksDiverge) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 3);
  ClockEnsemble ens(pl, timer_specs::intel_tsc(), RngTree(2));
  // Align offsets at t=0 exactly, then watch drift take over.
  std::vector<Duration> offsets;
  for (Rank r = 0; r < 3; ++r) {
    offsets.push_back(ens.clock(0).local_time(0.0) - ens.clock(r).local_time(0.0));
  }
  OffsetAlignment align(offsets);
  const auto s = sample_deviations(ens, align, 3600.0, 60.0);
  EXPECT_LT(std::abs(s.per_rank[1].front()), 1e-9);  // aligned at start
  EXPECT_GT(max_abs_deviation(s), 10 * units::us);   // drift dominates by the end
  EXPECT_GE(first_exceedance(s, 4.29 * units::us), 0.0);
}

TEST(Deviation, SeriesShapes) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 2);
  ClockEnsemble ens(pl, timer_specs::perfect(), RngTree(1));
  IdentityCorrection id;
  const auto s = sample_deviations(ens, id, 10.0, 1.0);
  EXPECT_EQ(s.at.size(), 11u);
  EXPECT_EQ(s.per_rank.size(), 2u);
  EXPECT_EQ(s.per_rank[0].size(), 11u);
  const auto stats = deviation_stats(s);
  EXPECT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[1].mean(), 0.0);
}

TEST(Deviation, MeasuredSamplingShowsReadNoise) {
  const Placement pl = pinning::inter_core(clusters::xeon_rwth(), 2);
  IdentityCorrection id;
  // Exact sampling of same-chip clocks: constant offset, zero swing.
  ClockEnsemble exact(pl, timer_specs::intel_tsc(), RngTree(5));
  const auto s_exact = sample_deviations(exact, id, 100.0, 1.0);
  const auto dev0 = s_exact.per_rank[1].front();
  for (Duration d : s_exact.per_rank[1]) EXPECT_NEAR(d, dev0, 1e-12);
  // Measured sampling: quantization + jitter make the series wiggle.
  ClockEnsemble noisy(pl, timer_specs::intel_tsc(), RngTree(5));
  const auto s_meas = sample_measured_deviations(noisy, id, 100.0, 1.0);
  Duration lo = kTimeInfinity, hi = -kTimeInfinity;
  for (Duration d : s_meas.per_rank[1]) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GT(hi - lo, 0.0);
  EXPECT_LT(hi - lo, 1 * units::us);
}

TEST(Deviation, MeasuredMasterLaneIsZero) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 2);
  ClockEnsemble ens(pl, timer_specs::intel_tsc(), RngTree(6));
  IdentityCorrection id;
  const auto s = sample_measured_deviations(ens, id, 10.0, 1.0);
  for (Duration d : s.per_rank[0]) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(Deviation, ParameterValidation) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 2);
  ClockEnsemble ens(pl, timer_specs::perfect(), RngTree(1));
  IdentityCorrection id;
  EXPECT_THROW(sample_deviations(ens, id, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_deviations(ens, id, 10.0, 0.0), std::invalid_argument);
}

TEST(IntervalStats, DistortionMeasured) {
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 1), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  trace.events(0).push_back(make_event(EventType::Enter, 1.0));
  trace.events(0).push_back(make_event(EventType::Exit, 2.0));
  trace.events(0).push_back(make_event(EventType::Enter, 3.0));
  auto ref = TimestampArray::from_local(trace);
  auto cor = ref;
  cor.at({0, 1}) = 2.5;  // stretches first interval by 0.5, shrinks second
  const auto d = interval_distortion(trace, ref, cor);
  EXPECT_EQ(d.intervals, 2u);
  EXPECT_DOUBLE_EQ(d.absolute.max(), 0.5);
  EXPECT_DOUBLE_EQ(d.absolute.mean(), 0.5);
}

TEST(IntervalStats, ZeroDistortionForIdentical) {
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 1), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  trace.events(0).push_back(make_event(EventType::Enter, 1.0));
  trace.events(0).push_back(make_event(EventType::Exit, 2.0));
  auto ref = TimestampArray::from_local(trace);
  const auto d = interval_distortion(trace, ref, ref);
  EXPECT_DOUBLE_EQ(d.absolute.max(), 0.0);
}

TEST(IntervalStats, TruthErrorRemovesGlobalShift) {
  Trace trace(pinning::inter_node(clusters::xeon_rwth(), 1), {0.47e-6, 0.86e-6, 4.29e-6},
              "test");
  Event a = make_event(EventType::Enter, 0.0);
  a.true_ts = 1.0;
  a.local_ts = 6.0;  // constant +5 shift
  Event b = make_event(EventType::Exit, 0.0);
  b.true_ts = 2.0;
  b.local_ts = 7.0;
  trace.events(0).push_back(a);
  trace.events(0).push_back(b);
  const auto err = truth_error(trace, TimestampArray::from_local(trace));
  EXPECT_NEAR(err.max(), 0.0, 1e-12);  // pure shift: no error after alignment
}

TEST(OmpSemantics, CleanRegionPasses) {
  Trace trace(Placement({{0, 0, 0}}), {1e-7, 2e-7, 1e-6}, "test");
  auto ev = [&](EventType ty, ThreadId th, Time t) {
    Event e;
    e.type = ty;
    e.thread = th;
    e.local_ts = e.true_ts = t;
    e.omp_instance = 0;
    trace.events(0).push_back(e);
  };
  ev(EventType::Fork, 0, 1.0);
  ev(EventType::Enter, 0, 1.1);
  ev(EventType::Enter, 1, 1.1);
  ev(EventType::BarrierEnter, 0, 2.0);
  ev(EventType::BarrierEnter, 1, 2.1);
  ev(EventType::BarrierExit, 0, 2.2);
  ev(EventType::BarrierExit, 1, 2.2);
  ev(EventType::Join, 0, 3.0);
  const auto rep = check_omp_semantics(trace, TimestampArray::from_local(trace));
  EXPECT_EQ(rep.regions, 1u);
  EXPECT_EQ(rep.with_any, 0u);
}

TEST(OmpSemantics, DetectsEachViolationKind) {
  Trace trace(Placement({{0, 0, 0}}), {1e-7, 2e-7, 1e-6}, "test");
  auto ev = [&](EventType ty, ThreadId th, Time t, std::int32_t inst) {
    Event e;
    e.type = ty;
    e.thread = th;
    e.local_ts = e.true_ts = t;
    e.omp_instance = inst;
    trace.events(0).push_back(e);
  };
  // Instance 0: entry violation (a thread event precedes the fork).
  ev(EventType::Enter, 1, 0.9, 0);
  ev(EventType::Fork, 0, 1.0, 0);
  ev(EventType::Join, 0, 2.0, 0);
  // Instance 1: exit violation (join before a thread's last event).
  ev(EventType::Fork, 0, 3.0, 1);
  ev(EventType::Join, 0, 4.0, 1);
  ev(EventType::Exit, 1, 4.1, 1);
  // Instance 2: barrier violation (exit before everyone entered).
  ev(EventType::Fork, 0, 5.0, 2);
  ev(EventType::BarrierEnter, 0, 5.5, 2);
  ev(EventType::BarrierExit, 0, 5.6, 2);
  ev(EventType::BarrierEnter, 1, 5.7, 2);  // enters after 0 already left
  ev(EventType::BarrierExit, 1, 5.8, 2);
  ev(EventType::Join, 0, 6.0, 2);

  // Sort by time as the tracer would.
  auto& v = trace.events(0);
  std::stable_sort(v.begin(), v.end(),
                   [](const Event& x, const Event& y) { return x.true_ts < y.true_ts; });

  const auto rep = check_omp_semantics(trace, TimestampArray::from_local(trace));
  EXPECT_EQ(rep.regions, 3u);
  EXPECT_EQ(rep.with_entry, 1u);
  EXPECT_EQ(rep.with_exit, 1u);
  EXPECT_EQ(rep.with_barrier, 1u);
  EXPECT_EQ(rep.with_any, 3u);
  EXPECT_DOUBLE_EQ(rep.any_pct(), 100.0);
  EXPECT_NEAR(rep.entry_pct(), 100.0 / 3.0, 1e-9);
}

TEST(OmpSemantics, EventsWithoutInstanceIgnored) {
  Trace trace(Placement({{0, 0, 0}}), {1e-7, 2e-7, 1e-6}, "test");
  Event e;
  e.type = EventType::Enter;
  e.omp_instance = -1;
  trace.events(0).push_back(e);
  const auto rep = check_omp_semantics(trace, TimestampArray::from_local(trace));
  EXPECT_EQ(rep.regions, 0u);
}

}  // namespace
}  // namespace chronosync
