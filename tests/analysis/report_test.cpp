#include "analysis/report.hpp"

#include <gtest/gtest.h>

namespace chronosync {
namespace {

TEST(Report, ClockConditionMentionsKeyNumbers) {
  ClockConditionReport rep;
  rep.total_events = 100;
  rep.message_events = 40;
  rep.p2p_messages = 20;
  rep.p2p_reversed = 3;
  rep.p2p_violations = 5;
  rep.p2p_worst = 12e-6;
  rep.logical_messages = 10;
  const std::string s = format_report(rep);
  EXPECT_NE(s.find("100 total"), std::string::npos);
  EXPECT_NE(s.find("reversed 3"), std::string::npos);
  EXPECT_NE(s.find("violated 5"), std::string::npos);
  EXPECT_NE(s.find("12.000 us"), std::string::npos);
}

TEST(Report, CleanReportOmitsWorst) {
  ClockConditionReport rep;
  rep.p2p_messages = 5;
  const std::string s = format_report(rep);
  EXPECT_EQ(s.find("worst"), std::string::npos);
}

TEST(Report, OmpSemanticsPercentages) {
  OmpSemanticsReport rep;
  rep.regions = 200;
  rep.with_any = 100;
  rep.with_exit = 50;
  const std::string s = format_report(rep);
  EXPECT_NE(s.find("200 parallel regions"), std::string::npos);
  EXPECT_NE(s.find("50.0 %"), std::string::npos);
  EXPECT_NE(s.find("25.0 %"), std::string::npos);
}

TEST(Report, IntervalDistortion) {
  IntervalDistortion d;
  d.absolute.add(1e-6);
  d.absolute.add(3e-6);
  d.intervals = 2;
  const std::string s = format_report(d);
  EXPECT_NE(s.find("2 intervals"), std::string::npos);
  EXPECT_NE(s.find("mean 2.0000 us"), std::string::npos);
  EXPECT_NE(s.find("max 3.0000 us"), std::string::npos);
}

TEST(Report, EmptyDistortion) {
  IntervalDistortion d;
  EXPECT_NE(format_report(d).find("0 intervals"), std::string::npos);
}

}  // namespace
}  // namespace chronosync
