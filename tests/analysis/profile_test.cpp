#include "analysis/profile.hpp"

#include <gtest/gtest.h>

#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Trace make_trace() {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6}, "test");
  const auto main_r = t.intern_region("main");
  const auto halo_r = t.intern_region("halo");
  auto ev = [&](Rank r, EventType ty, Time time, std::int32_t region = -1,
                std::int64_t id = -1, Rank peer = -1, std::uint32_t bytes = 0) {
    Event e;
    e.type = ty;
    e.local_ts = e.true_ts = time;
    e.region = region;
    e.msg_id = id;
    e.peer = peer;
    e.bytes = bytes;
    t.events(r).push_back(e);
  };
  // rank 0: main [1, 5] containing halo [2, 3]; one send.
  ev(0, EventType::Enter, 1.0, main_r);
  ev(0, EventType::Enter, 2.0, halo_r);
  ev(0, EventType::Send, 2.5, -1, 0, 1, 1024);
  ev(0, EventType::Exit, 3.0, halo_r);
  ev(0, EventType::Exit, 5.0, main_r);
  // rank 1: main [1, 4]; matching recv.
  ev(1, EventType::Enter, 1.0, main_r);
  ev(1, EventType::Recv, 2.6, -1, 0, 0, 1024);
  ev(1, EventType::Exit, 4.0, main_r);
  return t;
}

TEST(Profile, RegionTimesAndVisits) {
  Trace t = make_trace();
  const auto prof = profile_trace(t, TimestampArray::from_local(t));
  ASSERT_EQ(prof.regions.size(), 2u);
  // main: (5-1) + (4-1) = 7 s inclusive; halo: 1 s.
  EXPECT_EQ(prof.regions[0].name, "main");
  EXPECT_DOUBLE_EQ(prof.regions[0].inclusive_time, 7.0);
  EXPECT_EQ(prof.regions[0].visits, 2u);
  EXPECT_EQ(prof.regions[1].name, "halo");
  EXPECT_DOUBLE_EQ(prof.regions[1].inclusive_time, 1.0);
  EXPECT_EQ(prof.unbalanced_enters, 0u);
}

TEST(Profile, MessageStatsAndTraffic) {
  Trace t = make_trace();
  const auto prof = profile_trace(t, TimestampArray::from_local(t));
  EXPECT_EQ(prof.p2p.messages, 1u);
  EXPECT_EQ(prof.p2p.bytes, 1024u);
  EXPECT_NEAR(prof.p2p.flight_time.mean(), 0.1, 1e-12);
  EXPECT_EQ(prof.traffic[0][1], 1u);
  EXPECT_EQ(prof.traffic[1][0], 0u);
}

TEST(Profile, NegativeFlightTimeVisible) {
  Trace t = make_trace();
  // A reversed message distorts the profile: flight time goes negative.
  t.events(1)[1].local_ts = 2.0;
  const auto prof = profile_trace(t, TimestampArray::from_local(t));
  EXPECT_LT(prof.p2p.flight_time.min(), 0.0);
}

TEST(Profile, UnbalancedRegionsCounted) {
  Trace t = make_trace();
  t.events(0).pop_back();  // drop the final Exit
  const auto prof = profile_trace(t, TimestampArray::from_local(t));
  EXPECT_EQ(prof.unbalanced_enters, 1u);
}

TEST(Profile, FormatMentionsRegions) {
  Trace t = make_trace();
  const auto prof = profile_trace(t, TimestampArray::from_local(t));
  const std::string s = format_profile(prof);
  EXPECT_NE(s.find("main"), std::string::npos);
  EXPECT_NE(s.find("1 messages"), std::string::npos);
}

TEST(Slice, KeepsOnlyWindowEvents) {
  Trace t = make_trace();
  Trace cut = slice_trace(t, TimestampArray::from_local(t), 1.5, 3.5);
  // rank0: halo enter/exit + send; rank1: recv.
  EXPECT_EQ(cut.events(0).size(), 3u);
  EXPECT_EQ(cut.events(1).size(), 1u);
  EXPECT_EQ(cut.regions().size(), t.regions().size());
}

TEST(Slice, HalfMatchedMessagesDropAtEdges) {
  Trace t = make_trace();
  // Window contains the send but not the recv.
  Trace cut = slice_trace(t, TimestampArray::from_local(t), 2.4, 2.55);
  EXPECT_EQ(cut.events(0).size(), 1u);
  EXPECT_TRUE(cut.match_messages().empty());
}

TEST(Slice, WindowValidation) {
  Trace t = make_trace();
  EXPECT_THROW(slice_trace(t, TimestampArray::from_local(t), 2.0, 2.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
