#include <gtest/gtest.h>

#include <set>

#include "analysis/clock_condition.hpp"
#include "clockmodel/timer_spec.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Event make_event(EventType ty, Time t, std::int64_t id, Rank peer) {
  Event e;
  e.type = ty;
  e.local_ts = e.true_ts = t;
  e.msg_id = id;
  e.peer = peer;
  return e;
}

Trace three_rank_trace() {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 3), {0.47e-6, 0.86e-6, 4.29e-6}, "test");
  // 0 -> 1: fine; 0 -> 1: violated; 1 -> 2: violated; 2 -> 0: fine.
  t.events(0).push_back(make_event(EventType::Send, 1.0, 0, 1));
  t.events(0).push_back(make_event(EventType::Send, 2.0, 1, 1));
  t.events(1).push_back(make_event(EventType::Recv, 1.1, 0, 0));
  t.events(1).push_back(make_event(EventType::Recv, 1.9, 1, 0));
  t.events(1).push_back(make_event(EventType::Send, 3.0, 2, 2));
  t.events(2).push_back(make_event(EventType::Recv, 2.5, 2, 1));
  t.events(2).push_back(make_event(EventType::Send, 4.0, 3, 0));
  t.events(0).push_back(make_event(EventType::Recv, 4.1, 3, 2));
  return t;
}

TEST(PairMatrix, CountsPerDirectedPair) {
  Trace t = three_rank_trace();
  const auto msgs = t.match_messages();
  const auto m = per_pair_violations(t, TimestampArray::from_local(t), msgs);
  EXPECT_EQ(m.messages[0][1], 2u);
  EXPECT_EQ(m.violations[0][1], 1u);
  EXPECT_EQ(m.messages[1][2], 1u);
  EXPECT_EQ(m.violations[1][2], 1u);
  EXPECT_EQ(m.messages[2][0], 1u);
  EXPECT_EQ(m.violations[2][0], 0u);
  EXPECT_EQ(m.messages[1][0], 0u);
}

TEST(PairMatrix, WorstPairsSorted) {
  Trace t = three_rank_trace();
  // Make 0 -> 1 worse: add another violated message.
  t.events(0).push_back(make_event(EventType::Send, 5.0, 4, 1));
  t.events(1).push_back(make_event(EventType::Recv, 4.9, 4, 0));
  const auto m = per_pair_violations(t, TimestampArray::from_local(t), t.match_messages());
  const auto worst = m.worst_pairs();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(std::get<0>(worst[0]), 0);
  EXPECT_EQ(std::get<1>(worst[0]), 1);
  EXPECT_EQ(std::get<2>(worst[0]), 2u);
  EXPECT_EQ(std::get<2>(worst[1]), 1u);
}

TEST(PairMatrix, CleanTraceEmptyWorstList) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6}, "test");
  t.events(0).push_back(make_event(EventType::Send, 1.0, 0, 1));
  t.events(1).push_back(make_event(EventType::Recv, 1.1, 0, 0));
  const auto m = per_pair_violations(t, TimestampArray::from_local(t), t.match_messages());
  EXPECT_TRUE(m.worst_pairs().empty());
}

TEST(TimerRegistry, ByNameAndAliases) {
  EXPECT_EQ(timer_specs::by_name("intel-tsc").kind, TimerKind::IntelTsc);
  EXPECT_EQ(timer_specs::by_name("tsc").kind, TimerKind::IntelTsc);
  EXPECT_EQ(timer_specs::by_name("tb").kind, TimerKind::IbmTimeBase);
  EXPECT_EQ(timer_specs::by_name("mpi-wtime").kind, TimerKind::MpiWtime);
  EXPECT_THROW(timer_specs::by_name("sundial"), std::invalid_argument);
}

TEST(TimerRegistry, AllHasUniqueNames) {
  const auto specs = timer_specs::all();
  EXPECT_GE(specs.size(), 8u);
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(s.name);
  EXPECT_EQ(names.size(), specs.size());
}

}  // namespace
}  // namespace chronosync
