// End-to-end integration: simulate an application on drifting clocks, apply
// the paper's synchronization pipeline, and verify the paper's qualitative
// claims hold in the reproduction.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/clock_condition.hpp"
#include "trace/trace_io.hpp"
#include "analysis/interval_stats.hpp"
#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/error_estimation.hpp"
#include "sync/interpolation.hpp"
#include "sync/offset_alignment.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

/// A sweep run on TSC clocks across nodes, long enough for wander to bite.
AppRunResult drifting_run(std::uint64_t seed, int rounds = 400,
                          Duration gap = 2.0 /*s*/) {
  SweepConfig cfg;
  cfg.rounds = rounds;
  cfg.gap_mean = gap;
  cfg.collective_every = 50;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 8);
  job.timer = timer_specs::intel_tsc();
  job.seed = seed;
  return run_sweep(cfg, std::move(job));
}

TEST(EndToEnd, RawTimestampsAreUnusableAcrossNodes) {
  auto res = drifting_run(1);
  const auto raw = TimestampArray::from_local(res.trace);
  const auto rep = check_clock_condition(res.trace, raw);
  // Unsynchronized hardware counters start ~seconds apart: nearly everything
  // is inconsistent.
  EXPECT_GT(rep.p2p_reversed_pct(), 10.0);
}

TEST(EndToEnd, LinearInterpolationHelpsButDoesNotEliminate) {
  // The paper's core finding: linear offset interpolation removes offset and
  // mean drift (pairwise sync error drops by orders of magnitude), yet
  // clock-condition violations remain on longer runs.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    auto res = drifting_run(seed, 500, 4.0);  // ~2000 s run
    const auto msgs = res.trace.match_messages();
    const auto raw_ts = TimestampArray::from_local(res.trace);
    const LinearInterpolation interp = LinearInterpolation::from_store(res.offsets);
    const auto fixed_ts = apply_correction(res.trace, interp);

    const auto raw_err = message_sync_error(res.trace, raw_ts, msgs);
    const auto fix_err = message_sync_error(res.trace, fixed_ts, msgs);
    // Raw TSC values start ~0.5 s apart; interpolation brings pairs to the
    // residual-wander level (tens of us).
    EXPECT_GT(raw_err.mean(), 1 * units::ms) << seed;
    EXPECT_LT(fix_err.mean(), raw_err.mean() / 100.0) << seed;

    const auto rep = check_clock_condition(res.trace, fixed_ts, msgs,
                                           derive_logical_messages(res.trace));
    EXPECT_GT(rep.violations(), 0u) << seed;  // but still not violation-free
  }
}

TEST(EndToEnd, ClcRemovesAllRemainingViolations) {
  auto res = drifting_run(21, 500, 4.0);
  const LinearInterpolation interp = LinearInterpolation::from_store(res.offsets);
  const auto pre = apply_correction(res.trace, interp);

  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const ClcResult clc = controlled_logical_clock(res.trace, schedule, pre);

  const auto rep = check_clock_condition(res.trace, clc.corrected, msgs, logical);
  EXPECT_EQ(rep.violations(), 0u);
  EXPECT_EQ(rep.p2p_reversed, 0u);
  EXPECT_EQ(rep.logical_reversed, 0u);
}

TEST(EndToEnd, ClcPreservesIntervalsApproximately) {
  auto res = drifting_run(31, 300, 2.0);
  const LinearInterpolation interp = LinearInterpolation::from_store(res.offsets);
  const auto pre = apply_correction(res.trace, interp);
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const ClcResult clc = controlled_logical_clock(res.trace, schedule, pre);

  const auto dist = interval_distortion(res.trace, pre, clc.corrected);
  // Typical intervals are seconds; CLC corrections are microseconds.
  EXPECT_LT(dist.absolute.mean(), 50 * units::us);
}

TEST(EndToEnd, ClcImprovesAccuracyAgainstGroundTruth) {
  auto res = drifting_run(41, 300, 2.0);
  const LinearInterpolation interp = LinearInterpolation::from_store(res.offsets);
  const auto pre = apply_correction(res.trace, interp);
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const ClcResult clc = controlled_logical_clock(res.trace, schedule, pre);

  // CLC must not *hurt* overall accuracy relative to its input.
  const auto pre_err = truth_error(res.trace, pre);
  const auto clc_err = truth_error(res.trace, clc.corrected);
  EXPECT_LE(clc_err.mean(), pre_err.mean() * 1.5);
}

TEST(EndToEnd, ParallelClcAgreesOnRealTrace) {
  auto res = drifting_run(51, 200, 2.0);
  const LinearInterpolation interp = LinearInterpolation::from_store(res.offsets);
  const auto pre = apply_correction(res.trace, interp);
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);

  const ClcResult seq = controlled_logical_clock(res.trace, schedule, pre);
  // min_events_per_thread = 1 keeps the run genuinely 4-threaded: the
  // production clamp would collapse this mid-size trace to fewer workers and
  // the equivalence check would lose its concurrency coverage.
  ClcOptions opt;
  opt.min_events_per_thread = 1;
  const ClcResult par = controlled_logical_clock_parallel(res.trace, schedule, pre, opt, 4);
  EXPECT_EQ(seq.violations_repaired, par.violations_repaired);
  for (Rank r = 0; r < res.trace.ranks(); ++r) {
    for (std::uint32_t i = 0; i < res.trace.events(r).size(); ++i) {
      ASSERT_DOUBLE_EQ(seq.corrected.at({r, i}), par.corrected.at({r, i}));
    }
  }
}

TEST(EndToEnd, ErrorEstimationAlsoReducesSyncError) {
  auto res = drifting_run(61, 400, 1.0);
  const auto msgs = res.trace.match_messages();
  const auto raw_err =
      message_sync_error(res.trace, TimestampArray::from_local(res.trace), msgs);
  const auto corr =
      ErrorEstimationCorrection::build(res.trace, msgs, EstimationMethod::Regression);
  const auto fix_err =
      message_sync_error(res.trace, apply_correction(res.trace, corr), msgs);
  // A per-pair fitted line removes offset and mean drift from the
  // application's own messages.
  EXPECT_LT(fix_err.mean(), raw_err.mean() / 100.0);
}

TEST(EndToEnd, PiecewiseBeatsLinearWithMidRunMeasurements) {
  // Extension experiment (ref. [17]): periodic offset measurement during the
  // run lets piecewise interpolation track non-constant drift.
  SweepConfig cfg;
  cfg.rounds = 300;
  cfg.gap_mean = 4.0;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::gettimeofday_ntp();  // the nastiest drift shape
  job.seed = 71;
  Job j(std::move(job));
  OffsetStore store(j.ranks());
  j.run([&](Proc& p) -> Coro<void> {
    p.set_tracing(false);
    co_await probe_offsets(p, store, 10);
    p.set_tracing(true);
    for (int block = 0; block < 6; ++block) {
      for (int round = 0; round < cfg.rounds / 6; ++round) {
        co_await p.compute(cfg.gap_mean);
        co_await p.send((p.rank() + 1) % p.nranks(), 1, 256);
        co_await p.recv((p.rank() + p.nranks() - 1) % p.nranks(), 1);
      }
      p.set_tracing(false);
      co_await probe_offsets(p, store, 10);  // periodic mid-run measurement
      p.set_tracing(true);
    }
  });
  Trace trace = j.take_trace();

  const auto msgs = trace.match_messages();
  const LinearInterpolation lin = LinearInterpolation::from_store(store);
  const PiecewiseInterpolation pw = PiecewiseInterpolation::from_store(store);
  // Pairwise sync error isolates worker-vs-master error (truth_error would be
  // dominated by the master clock's own drift, which no correction can see).
  const auto lin_err = message_sync_error(trace, apply_correction(trace, lin), msgs);
  const auto pw_err = message_sync_error(trace, apply_correction(trace, pw), msgs);
  EXPECT_LT(pw_err.mean(), lin_err.mean());
}

TEST(EndToEnd, TraceSurvivesSerializationPipeline) {
  auto res = drifting_run(81, 50, 0.1);
  std::stringstream buf;
  write_trace(res.trace, buf);
  Trace back = read_trace(buf);
  const auto a = check_clock_condition(res.trace, TimestampArray::from_local(res.trace));
  const auto b = check_clock_condition(back, TimestampArray::from_local(back));
  EXPECT_EQ(a.p2p_violations, b.p2p_violations);
  EXPECT_EQ(a.total_events, b.total_events);
}

}  // namespace
}  // namespace chronosync
