#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "topology/cluster.hpp"
#include "topology/latency_model.hpp"
#include "topology/pinning.hpp"

namespace chronosync {
namespace {

TEST(ClusterSpec, Presets) {
  const ClusterSpec xeon = clusters::xeon_rwth();
  EXPECT_EQ(xeon.nodes, 62);
  EXPECT_EQ(xeon.cores_per_node(), 8);
  EXPECT_EQ(xeon.total_cores(), 496);

  const ClusterSpec it = clusters::itanium_smp_node();
  EXPECT_EQ(it.nodes, 1);
  EXPECT_EQ(it.chips_per_node, 4);
  EXPECT_EQ(it.cores_per_chip, 4);
}

TEST(Classify, Domains) {
  EXPECT_EQ(classify({0, 0, 0}, {0, 0, 0}), CommDomain::SameCore);
  EXPECT_EQ(classify({0, 0, 0}, {0, 0, 1}), CommDomain::SameChip);
  EXPECT_EQ(classify({0, 0, 0}, {0, 1, 0}), CommDomain::SameNode);
  EXPECT_EQ(classify({0, 0, 0}, {1, 0, 0}), CommDomain::CrossNode);
}

TEST(Pinning, InterNodePlacesOnDistinctNodes) {
  const Placement p = pinning::inter_node(clusters::xeon_rwth(), 4);
  ASSERT_EQ(p.ranks(), 4);
  for (Rank a = 0; a < 4; ++a) {
    for (Rank b = a + 1; b < 4; ++b) {
      EXPECT_EQ(p.domain(a, b), CommDomain::CrossNode);
    }
  }
}

TEST(Pinning, InterChipSameNodeDifferentChips) {
  const Placement p = pinning::inter_chip(clusters::xeon_rwth(), 2);
  EXPECT_EQ(p.domain(0, 1), CommDomain::SameNode);
}

TEST(Pinning, InterCoreSameChip) {
  const Placement p = pinning::inter_core(clusters::xeon_rwth(), 4);
  for (Rank a = 0; a < 4; ++a) {
    for (Rank b = a + 1; b < 4; ++b) {
      EXPECT_EQ(p.domain(a, b), CommDomain::SameChip);
    }
  }
}

TEST(Pinning, CapacityChecks) {
  EXPECT_THROW(pinning::inter_chip(clusters::xeon_rwth(), 3), std::invalid_argument);
  EXPECT_THROW(pinning::inter_core(clusters::xeon_rwth(), 5), std::invalid_argument);
  EXPECT_THROW(pinning::inter_node(clusters::xeon_rwth(), 63), std::invalid_argument);
}

TEST(Pinning, BlockFillsHierarchically) {
  const Placement p = pinning::block(clusters::xeon_rwth(), 10);
  EXPECT_EQ(p.location(0).node, 0);
  EXPECT_EQ(p.location(7).node, 0);
  EXPECT_EQ(p.location(8).node, 1);
  EXPECT_EQ(p.location(3).chip, 0);
  EXPECT_EQ(p.location(4).chip, 1);
}

TEST(Pinning, SchedulerDefaultUsesAllRanksOnce) {
  Rng rng(3);
  const Placement p = pinning::scheduler_default(clusters::xeon_rwth(), 32, rng);
  ASSERT_EQ(p.ranks(), 32);
  // No two ranks on one core.
  for (Rank a = 0; a < 32; ++a) {
    for (Rank b = a + 1; b < 32; ++b) {
      EXPECT_FALSE(p.location(a) == p.location(b));
    }
  }
}

TEST(Pinning, SchedulerDefaultIsSeedDependent) {
  Rng r1(3), r2(4);
  const Placement a = pinning::scheduler_default(clusters::xeon_rwth(), 8, r1);
  const Placement b = pinning::scheduler_default(clusters::xeon_rwth(), 8, r2);
  bool differs = false;
  for (Rank r = 0; r < 8; ++r) {
    if (!(a.location(r) == b.location(r))) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(LatencyModel, TableIIMinimums) {
  const HierarchicalLatencyModel m = latencies::xeon_infiniband();
  EXPECT_DOUBLE_EQ(m.min_latency(CommDomain::SameChip), 0.47e-6);
  EXPECT_DOUBLE_EQ(m.min_latency(CommDomain::SameNode), 0.86e-6);
  EXPECT_DOUBLE_EQ(m.min_latency(CommDomain::CrossNode), 4.29e-6);
}

TEST(LatencyModel, BytesIncreaseLatency) {
  const HierarchicalLatencyModel m = latencies::xeon_infiniband();
  EXPECT_GT(m.min_latency(CommDomain::CrossNode, 1 << 20),
            m.min_latency(CommDomain::CrossNode, 0));
}

TEST(LatencyModel, SamplesNeverBelowMinimum) {
  const HierarchicalLatencyModel m = latencies::xeon_infiniband();
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const Duration lat = m.sample(CommDomain::CrossNode, 1024, rng);
    EXPECT_GE(lat, m.min_latency(CommDomain::CrossNode, 1024));
  }
}

TEST(LatencyModel, SameCoreRejected) {
  const HierarchicalLatencyModel m = latencies::xeon_infiniband();
  EXPECT_THROW(m.min_latency(CommDomain::SameCore), std::invalid_argument);
}

TEST(LatencyModel, DomainOrdering) {
  for (const auto& m : {latencies::xeon_infiniband(), latencies::powerpc_myrinet(),
                        latencies::opteron_seastar()}) {
    EXPECT_LT(m.min_latency(CommDomain::SameChip), m.min_latency(CommDomain::SameNode));
    EXPECT_LT(m.min_latency(CommDomain::SameNode), m.min_latency(CommDomain::CrossNode));
  }
}

TEST(Placement, RangeChecked) {
  const Placement p = pinning::inter_node(clusters::xeon_rwth(), 2);
  EXPECT_THROW(p.location(2), std::invalid_argument);
  EXPECT_THROW(p.location(-1), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
