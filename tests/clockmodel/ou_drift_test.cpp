#include <gtest/gtest.h>

#include <cmath>

#include "clockmodel/drift_model.hpp"
#include "common/statistics.hpp"

namespace chronosync {
namespace {

TEST(OrnsteinUhlenbeckDrift, DeterministicGivenSeed) {
  OrnsteinUhlenbeckDrift a(Rng(3), 0.0, 0.0, 0.01, 10.0, 1e-9);
  OrnsteinUhlenbeckDrift b(Rng(3), 0.0, 0.0, 0.01, 10.0, 1e-9);
  (void)a.integrated(5000.0);  // different extension order
  for (Time t : {100.0, 2500.0, 777.0}) {
    EXPECT_DOUBLE_EQ(a.drift(t), b.drift(t));
    EXPECT_DOUBLE_EQ(a.integrated(t), b.integrated(t));
  }
}

TEST(OrnsteinUhlenbeckDrift, RevertsTowardMean) {
  // Start far from the mean with zero noise: pure exponential decay.
  OrnsteinUhlenbeckDrift d(Rng(1), 100e-6, 0.0, 0.05, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(d.drift(0.0), 100e-6);
  EXPECT_LT(d.drift(50.0), 100e-6 * 0.2);
  EXPECT_LT(d.drift(200.0), 1e-6);
}

TEST(OrnsteinUhlenbeckDrift, StationarySpreadBounded) {
  // With reversion, excursions stay near the stationary sigma instead of
  // growing like the plain random walk.
  const double step_sigma = 1e-9;
  const double reversion = 0.02;
  const double stationary = step_sigma / std::sqrt(2.0 * reversion * 10.0);
  OrnsteinUhlenbeckDrift d(Rng(7), 0.0, 0.0, reversion, 10.0, step_sigma);
  RunningStats stats;
  for (int k = 0; k < 20000; ++k) stats.add(d.drift(10.0 * k));
  EXPECT_LT(std::abs(stats.mean()), 3.0 * stationary);
  EXPECT_NEAR(stats.stddev(), stationary, stationary);  // right order of magnitude
}

TEST(OrnsteinUhlenbeckDrift, IntegralConsistentWithRate) {
  OrnsteinUhlenbeckDrift d(Rng(11), 2e-6, 0.0, 0.01, 10.0, 1e-9);
  for (Time t : {5.0, 105.0, 1005.0}) {
    const double got = d.integrated(t + 2.0) - d.integrated(t);
    EXPECT_NEAR(got, d.drift(t) * 2.0, 1e-15);
  }
}

TEST(OrnsteinUhlenbeckDrift, ParameterValidation) {
  EXPECT_THROW(OrnsteinUhlenbeckDrift(Rng(1), 0.0, 0.0, 0.01, 0.0, 1e-9),
               std::invalid_argument);
  EXPECT_THROW(OrnsteinUhlenbeckDrift(Rng(1), 0.0, 0.0, -0.1, 1.0, 1e-9),
               std::invalid_argument);
  EXPECT_THROW(OrnsteinUhlenbeckDrift(Rng(1), 0.0, 0.0, 2.0, 1.0, 1e-9),
               std::invalid_argument);
}

TEST(OrnsteinUhlenbeckDrift, NonzeroMeanTracked) {
  OrnsteinUhlenbeckDrift d(Rng(13), 0.0, 5e-6, 0.05, 1.0, 0.0);
  EXPECT_NEAR(d.drift(300.0), 5e-6, 1e-7);
}

}  // namespace
}  // namespace chronosync
