#include "clockmodel/clock_ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "clockmodel/timer_spec.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

TEST(TimerSpecs, NamesAreDistinct) {
  EXPECT_EQ(timer_specs::perfect().name, "perfect");
  EXPECT_EQ(timer_specs::intel_tsc().name, "intel-tsc");
  EXPECT_EQ(timer_specs::mpi_wtime().name, "mpi-wtime");
  EXPECT_NE(timer_specs::gettimeofday_ntp().name, timer_specs::opteron_gettimeofday().name);
}

TEST(TimerSpecs, SoftwareClocksAreNtpDisciplined) {
  EXPECT_TRUE(timer_specs::gettimeofday_ntp().ntp_disciplined);
  EXPECT_TRUE(timer_specs::mpi_wtime().ntp_disciplined);
  EXPECT_FALSE(timer_specs::intel_tsc().ntp_disciplined);
  EXPECT_FALSE(timer_specs::ibm_time_base().ntp_disciplined);
}

TEST(TimerSpecs, GettimeofdayHasMicrosecondResolution) {
  EXPECT_DOUBLE_EQ(timer_specs::gettimeofday_ntp().resolution, 1e-6);
}

TEST(ClockEnsemble, PerfectClocksAgreeExactly) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 4);
  ClockEnsemble ens(pl, timer_specs::perfect(), RngTree(1));
  for (Time t : {0.0, 100.0, 3600.0}) {
    for (Rank r = 1; r < 4; ++r) {
      EXPECT_DOUBLE_EQ(ens.deviation(r, 0, t), 0.0);
    }
  }
}

TEST(ClockEnsemble, CrossNodeClocksDrift) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 4);
  ClockEnsemble ens(pl, timer_specs::intel_tsc(), RngTree(2));
  // After removing initial offsets, cross-node deviations must grow with
  // time (different node oscillators).
  const Duration d0 = ens.deviation(1, 0, 0.0);
  const Duration d1 = ens.deviation(1, 0, 3600.0);
  EXPECT_GT(std::abs(d1 - d0), 1 * units::ms * 0.001);  // >1 us of relative drift
}

TEST(ClockEnsemble, SameNodeTscStaysTightlyCoupled) {
  // Ranks on one node share the TSC oscillator: deviation stays at the
  // (sub-microsecond) offset noise level for the whole run.
  const Placement pl = pinning::inter_core(clusters::xeon_rwth(), 4);
  ClockEnsemble ens(pl, timer_specs::intel_tsc(), RngTree(3));
  const Duration d0 = ens.deviation(1, 0, 0.0);
  const Duration d1 = ens.deviation(1, 0, 3600.0);
  EXPECT_LT(std::abs(d0), 0.5 * units::us);
  EXPECT_NEAR(d0, d1, 1e-12);  // shared oscillator: difference is constant
}

TEST(ClockEnsemble, PerChipScopeSeparatesChips) {
  const Placement pl = pinning::block(clusters::itanium_smp_node(), 8);
  ClockEnsemble ens(pl, timer_specs::itanium_tsc(), RngTree(4));
  // Ranks 0..3 share chip 0; ranks 4..7 chip 1.  Same-chip pairs differ only
  // by constant offsets; cross-chip pairs drift apart slowly.
  const Duration same0 = ens.deviation(1, 0, 0.0);
  const Duration same1 = ens.deviation(1, 0, 100.0);
  EXPECT_NEAR(same0, same1, 1e-10);
  const Duration cross0 = ens.deviation(4, 0, 0.0);
  const Duration cross1 = ens.deviation(4, 0, 300.0);
  EXPECT_NE(cross0, cross1);
}

TEST(ClockEnsemble, DeterministicAcrossConstruction) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 4);
  ClockEnsemble a(pl, timer_specs::intel_tsc(), RngTree(5));
  ClockEnsemble b(pl, timer_specs::intel_tsc(), RngTree(5));
  for (Rank r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(a.clock(r).local_time(1800.0), b.clock(r).local_time(1800.0));
  }
}

TEST(ClockEnsemble, SeedChangesClocks) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 2);
  ClockEnsemble a(pl, timer_specs::intel_tsc(), RngTree(6));
  ClockEnsemble b(pl, timer_specs::intel_tsc(), RngTree(7));
  EXPECT_NE(a.clock(1).local_time(100.0), b.clock(1).local_time(100.0));
}

TEST(ClockEnsemble, NtpClockBoundedDivergence) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 4);
  ClockEnsemble ens(pl, timer_specs::gettimeofday_ntp(), RngTree(8));
  // Disciplined system clocks stay within NTP-grade bounds (~ms).
  EXPECT_LT(std::abs(ens.deviation(1, 0, 3600.0)), 30 * units::ms);
}

TEST(ClockEnsemble, RankRangeChecked) {
  const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 2);
  ClockEnsemble ens(pl, timer_specs::perfect(), RngTree(1));
  EXPECT_THROW(ens.clock(2), std::invalid_argument);
  EXPECT_THROW(ens.clock(-1), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
