#include "clockmodel/drift_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace chronosync {
namespace {

TEST(ConstantDrift, IntegratesLinearly) {
  ConstantDrift d(5 * units::ppm);
  EXPECT_DOUBLE_EQ(d.drift(0.0), 5e-6);
  EXPECT_DOUBLE_EQ(d.drift(1000.0), 5e-6);
  EXPECT_DOUBLE_EQ(d.integrated(1000.0), 5e-3);
  EXPECT_DOUBLE_EQ(d.integrated(0.0), 0.0);
}

TEST(PiecewiseConstantDrift, SegmentsAndPrefix) {
  PiecewiseConstantDrift d({0.0, 10.0, 20.0}, {1e-6, -1e-6, 2e-6});
  EXPECT_DOUBLE_EQ(d.drift(5.0), 1e-6);
  EXPECT_DOUBLE_EQ(d.drift(10.0), -1e-6);
  EXPECT_DOUBLE_EQ(d.drift(25.0), 2e-6);
  EXPECT_NEAR(d.integrated(10.0), 1e-5, 1e-18);
  EXPECT_NEAR(d.integrated(20.0), 0.0, 1e-18);
  EXPECT_NEAR(d.integrated(30.0), 2e-5, 1e-18);
}

TEST(PiecewiseConstantDrift, Validation) {
  EXPECT_THROW(PiecewiseConstantDrift({}, {}), std::invalid_argument);
  EXPECT_THROW(PiecewiseConstantDrift({1.0}, {1e-6}), std::invalid_argument);
  EXPECT_THROW(PiecewiseConstantDrift({0.0, 0.0}, {1e-6, 2e-6}), std::invalid_argument);
  EXPECT_THROW(PiecewiseConstantDrift({0.0}, {1e-6, 2e-6}), std::invalid_argument);
}

TEST(RandomWalkDrift, DeterministicGivenSeed) {
  RandomWalkDrift a(Rng(5), 0.0, 10.0, 1e-9, 1e-6);
  RandomWalkDrift b(Rng(5), 0.0, 10.0, 1e-9, 1e-6);
  for (Time t : {0.0, 100.0, 55.0, 1000.0, 3.0}) {
    EXPECT_DOUBLE_EQ(a.drift(t), b.drift(t));
    EXPECT_DOUBLE_EQ(a.integrated(t), b.integrated(t));
  }
}

TEST(RandomWalkDrift, QueryOrderIndependent) {
  RandomWalkDrift a(Rng(5), 0.0, 10.0, 1e-9, 1e-6);
  RandomWalkDrift b(Rng(5), 0.0, 10.0, 1e-9, 1e-6);
  const double a_late = a.integrated(2000.0);  // extend a first
  (void)b.integrated(50.0);                    // extend b in small steps
  (void)b.integrated(700.0);
  const double b_late = b.integrated(2000.0);
  EXPECT_DOUBLE_EQ(a_late, b_late);
}

TEST(RandomWalkDrift, RespectsClamp) {
  RandomWalkDrift d(Rng(7), 0.0, 1.0, 1e-6, 2e-6);
  for (int k = 0; k < 5000; ++k) {
    EXPECT_LE(std::abs(d.drift(static_cast<Time>(k))), 2e-6 + 1e-18);
  }
}

TEST(RandomWalkDrift, IntegralConsistentWithRate) {
  RandomWalkDrift d(Rng(11), 0.0, 10.0, 1e-9, 1e-6);
  // integrated must be the running integral of drift: check on segment
  // midpoints: integrated(t + h) - integrated(t) == drift(t) * h within a
  // segment.
  for (Time t : {5.0, 105.0, 1005.0}) {
    const double got = d.integrated(t + 2.0) - d.integrated(t);
    EXPECT_NEAR(got, d.drift(t) * 2.0, 1e-18);
  }
}

TEST(RandomWalkDrift, InitialRateApplies) {
  RandomWalkDrift d(Rng(1), 5e-6, 10.0, 0.0, 1e-5);
  EXPECT_DOUBLE_EQ(d.drift(0.0), 5e-6);
  EXPECT_DOUBLE_EQ(d.drift(500.0), 5e-6);  // zero sigma: never changes
  EXPECT_NEAR(d.integrated(100.0), 5e-4, 1e-15);
}

TEST(SinusoidalDrift, IntegralMatchesDerivative) {
  SinusoidalDrift d(1e-7, 600.0, 0.3);
  const double h = 1e-3;
  for (Time t : {0.0, 100.0, 299.5, 571.0}) {
    const double numeric = (d.integrated(t + h) - d.integrated(t - h)) / (2 * h);
    EXPECT_NEAR(numeric, d.drift(t), 1e-12);
  }
  EXPECT_NEAR(d.integrated(0.0), 0.0, 1e-18);
}

TEST(SinusoidalDrift, PeriodicIntegralReturnsToZero) {
  SinusoidalDrift d(1e-7, 600.0, 0.0);
  EXPECT_NEAR(d.integrated(600.0), 0.0, 1e-15);
}

TEST(CompositeDrift, Sums) {
  std::vector<std::unique_ptr<DriftModel>> parts;
  parts.push_back(std::make_unique<ConstantDrift>(1e-6));
  parts.push_back(std::make_unique<ConstantDrift>(2e-6));
  CompositeDrift d(std::move(parts));
  EXPECT_DOUBLE_EQ(d.drift(5.0), 3e-6);
  EXPECT_DOUBLE_EQ(d.integrated(10.0), 3e-5);
}

TEST(NtpDisciplinedDrift, BoundedOffsetOverLongRun) {
  // NTP's whole job: the disciplined clock must not diverge unboundedly even
  // with a 30 ppm oscillator error.
  NtpParams params;
  NtpDisciplinedDrift d(Rng(3), std::make_unique<ConstantDrift>(30 * units::ppm), params);
  for (Time t : {300.0, 1800.0, 3600.0}) {
    EXPECT_LT(std::abs(d.integrated(t)), 20e-3) << "at t=" << t;
  }
}

TEST(NtpDisciplinedDrift, StartsNearlyConverged) {
  NtpParams params;
  params.initial_freq_error = 0.1 * units::ppm;
  NtpDisciplinedDrift d(Rng(3), std::make_unique<ConstantDrift>(30 * units::ppm), params);
  // Effective drift at t=0 is the oscillator plus the converged frequency
  // correction: within a few times the residual error.
  EXPECT_LT(std::abs(d.drift(0.0)), 1 * units::ppm);
}

TEST(NtpDisciplinedDrift, SlopeChangesAtPolls) {
  NtpParams params;
  params.poll_interval = 100.0;
  params.poll_jitter = 0.0;
  NtpDisciplinedDrift d(Rng(17), std::make_unique<ConstantDrift>(10 * units::ppm), params);
  // Drift is piecewise constant between polls and changes across them.
  const double d1 = d.drift(150.0);
  const double d2 = d.drift(199.0);
  const double d3 = d.drift(201.0);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_NE(d2, d3);
}

TEST(NtpDisciplinedDrift, IntegralContinuousAcrossPolls) {
  NtpParams params;
  params.poll_interval = 100.0;
  params.poll_jitter = 0.0;
  NtpDisciplinedDrift d(Rng(17), std::make_unique<ConstantDrift>(10 * units::ppm), params);
  const double before = d.integrated(100.0 - 1e-6);
  const double after = d.integrated(100.0 + 1e-6);
  EXPECT_NEAR(before, after, 1e-9);
}

TEST(NtpDisciplinedDrift, DeterministicGivenSeed) {
  NtpParams params;
  NtpDisciplinedDrift a(Rng(21), std::make_unique<ConstantDrift>(5 * units::ppm), params);
  NtpDisciplinedDrift b(Rng(21), std::make_unique<ConstantDrift>(5 * units::ppm), params);
  (void)a.integrated(3000.0);  // different query order
  for (Time t : {100.0, 2000.0, 2500.0}) {
    EXPECT_DOUBLE_EQ(a.integrated(t), b.integrated(t));
  }
}

}  // namespace
}  // namespace chronosync
