#include "clockmodel/sim_clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace chronosync {
namespace {

std::shared_ptr<const DriftModel> constant(double rate) {
  return std::make_shared<ConstantDrift>(rate);
}

TEST(SimClock, LocalTimeAppliesOffsetAndDrift) {
  SimClock c(0.5, constant(10 * units::ppm), 0.0, {}, Rng(1));
  EXPECT_DOUBLE_EQ(c.local_time(0.0), 0.5);
  EXPECT_NEAR(c.local_time(1000.0), 1000.5 + 0.01, 1e-12);
}

TEST(SimClock, ReadWithoutNoiseEqualsLocalTime) {
  SimClock c(0.0, constant(0.0), 0.0, {}, Rng(1));
  EXPECT_DOUBLE_EQ(c.read(5.0), 5.0);
}

TEST(SimClock, QuantizationFloorsToResolution) {
  SimClock c(0.0, constant(0.0), 1e-6, {}, Rng(1));
  EXPECT_DOUBLE_EQ(c.read(5.0000014), 5.000001);
}

TEST(SimClock, ReadsAreMonotone) {
  ClockReadNoise noise{50 * units::ns, 0.01, 2 * units::us};
  SimClock c(0.0, constant(0.0), 0.0, noise, Rng(5));
  Time prev = -1.0;
  for (int i = 0; i < 10000; ++i) {
    const Time t = c.read(static_cast<double>(i) * 1e-6);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SimClock, JitterHasExpectedScale) {
  ClockReadNoise noise{100 * units::ns, 0.0, 0.0};
  SimClock c(0.0, constant(0.0), 0.0, noise, Rng(7));
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    // Wide spacing so monotonicity clamping never hides the noise.
    const Time t = static_cast<double>(i);
    const double err = c.read(t) - t;
    sq += err * err;
  }
  EXPECT_NEAR(std::sqrt(sq / n), 100e-9, 15e-9);
}

TEST(SimClock, OutliersArePositive) {
  ClockReadNoise noise{0.0, 1.0, 1 * units::us};  // always outlier
  SimClock c(0.0, constant(0.0), 0.0, noise, Rng(9));
  for (int i = 0; i < 100; ++i) {
    const Time t = static_cast<double>(i);
    EXPECT_GT(c.read(t), t);
  }
}

TEST(SimClock, TrueTimeOfInvertsLocalTime) {
  SimClock c(0.25, constant(25 * units::ppm), 0.0, {}, Rng(1));
  const Time t = 1234.5;
  const Time lt = c.local_time(t);
  EXPECT_NEAR(c.true_time_of(lt, 0.0, 1e5), t, 1e-9);
}

TEST(SimClock, TrueTimeOfRejectsBadBracket) {
  SimClock c(0.0, constant(0.0), 0.0, {}, Rng(1));
  EXPECT_THROW(c.true_time_of(50.0, 100.0, 200.0), std::invalid_argument);
}

TEST(SimClock, SharedDriftModelGivesIdenticalDriftComponent) {
  auto shared = constant(3 * units::ppm);
  SimClock a(1.0, shared, 0.0, {}, Rng(1));
  SimClock b(2.0, shared, 0.0, {}, Rng(2));
  // Deviation between the two clocks is exactly the offset difference.
  for (Time t : {0.0, 100.0, 5000.0}) {
    EXPECT_NEAR(a.local_time(t) - b.local_time(t), -1.0, 1e-12);
  }
}

TEST(SimClock, ValidatesParameters) {
  EXPECT_THROW(SimClock(0.0, nullptr, 0.0, {}, Rng(1)), std::invalid_argument);
  EXPECT_THROW(SimClock(0.0, constant(0.0), -1.0, {}, Rng(1)), std::invalid_argument);
  EXPECT_THROW(SimClock(0.0, constant(0.0), 0.0, {}, Rng(1), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
