// Tests for the metrics exporters (obs/export.hpp): JSON snapshot
// round-trip (write -> parse -> bit-identical values), Prometheus text
// shape, schema validation failure modes, extension dispatch, and the
// background resource sampler.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace chronosync::obs {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_level(Level::Off);
    reset();
  }
  void TearDown() override {
    set_level(Level::Off);
    reset();
  }
};

/// A registry population with awkward doubles: values that only survive a
/// text round-trip when the writer prints full precision.
void populate_registry() {
  counter("test.exp_counter").add(7);
  gauge("test.exp_gauge").set(0.1);
  gauge("test.exp_tiny").set(4.9406564584124654e-324);  // min subnormal
  Histo& h = histogram("test.exp_histo", 0.0, 10.0, 5);
  h.add(1.0 / 3.0);
  h.add(2.0 / 3.0);
  QuantileHisto& q = quantile_histogram("test.exp_quant");
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i) * 1e-3);
}

TEST_F(ExportTest, JsonSnapshotRoundTripsBitForBit) {
  set_level(Level::Metrics);
  populate_registry();

  std::ostringstream os;
  write_metrics_json(os, "export-test", Level::Metrics);
  const auto parsed = read_metrics_json(os.str());
  const auto expected = metrics_snapshot();

  ASSERT_EQ(parsed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(parsed[i].first, expected[i].first);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed[i].second),
              std::bit_cast<std::uint64_t>(expected[i].second))
        << expected[i].first << ": " << parsed[i].second << " vs " << expected[i].second;
  }
}

TEST_F(ExportTest, JsonCarriesSchemaSuiteAndLevel) {
  set_level(Level::Metrics);
  std::ostringstream os;
  write_metrics_json(os, "export-test", Level::Trace);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\":\"chronosync-metrics-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"suite\":\"export-test\""), std::string::npos);
  EXPECT_NE(doc.find("\"obs_level\":\"trace\""), std::string::npos);
}

TEST_F(ExportTest, ReadRejectsEverySchemaViolation) {
  EXPECT_THROW(read_metrics_json("not json at all"), std::invalid_argument);
  EXPECT_THROW(read_metrics_json("[1,2,3]"), std::invalid_argument);
  EXPECT_THROW(read_metrics_json("{\"metrics\":{}}"), std::invalid_argument);  // no marker
  EXPECT_THROW(read_metrics_json("{\"schema\":\"other-v9\",\"metrics\":{}}"),
               std::invalid_argument);
  EXPECT_THROW(read_metrics_json("{\"schema\":\"chronosync-metrics-v1\"}"),
               std::invalid_argument);  // no metrics object
  EXPECT_THROW(read_metrics_json("{\"schema\":\"chronosync-metrics-v1\",\"metrics\":[]}"),
               std::invalid_argument);
  EXPECT_THROW(
      read_metrics_json("{\"schema\":\"chronosync-metrics-v1\",\"metrics\":{\"x\":\"y\"}}"),
      std::invalid_argument);
  // The minimal valid document parses to zero metrics.
  EXPECT_TRUE(
      read_metrics_json("{\"schema\":\"chronosync-metrics-v1\",\"metrics\":{}}").empty());
}

TEST_F(ExportTest, PrometheusTextShape) {
  set_level(Level::Metrics);
  populate_registry();

  std::ostringstream os;
  write_metrics_prometheus(os);
  const std::string text = os.str();

  // Names sanitized to [a-zA-Z0-9_:]; counters typed counter, the rest gauge.
  EXPECT_NE(text.find("# TYPE test_exp_counter counter\ntest_exp_counter 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_exp_gauge gauge\ntest_exp_gauge 0.1"), std::string::npos);
  EXPECT_NE(text.find("test_exp_histo{stat=\"count\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("test_exp_quant{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(text.find("test_exp_quant{quantile=\"0.999\"} "), std::string::npos);
  EXPECT_NE(text.find("test_exp_quant_count 100\n"), std::string::npos);
  // The registry's dotted names never leak into an exposition name.
  EXPECT_EQ(text.find("test.exp"), std::string::npos);
}

TEST_F(ExportTest, FileDispatchPicksFormatFromExtension) {
  set_level(Level::Metrics);
  counter("test.exp_dispatch").add(1);

  const std::string json_path = "export_test_dispatch.json";
  const std::string prom_path = "export_test_dispatch.prom";
  write_metrics_file(json_path, "export-test", Level::Metrics);
  write_metrics_file(prom_path, "export-test", Level::Metrics);

  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string json_text = slurp(json_path);
  const std::string prom_text = slurp(prom_path);
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());

  EXPECT_NE(json_text.find("\"schema\":\"chronosync-metrics-v1\""), std::string::npos);
  EXPECT_FALSE(read_metrics_json(json_text).empty());
  EXPECT_EQ(prom_text.rfind("# TYPE ", 0), 0u);  // Prometheus exposition, not JSON

  EXPECT_THROW(write_metrics_json_file("no_such_dir/x.json", "export-test", Level::Metrics),
               std::invalid_argument);
}

TEST_F(ExportTest, ResourceSamplerRecordsGaugesAndTicks) {
  set_level(Level::Metrics);
  {
    ResourceSampler sampler(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sampler.stop();  // idempotent with the destructor
  }
  EXPECT_GE(counter("obs.sampler_ticks").value(), 1);
  EXPECT_GT(gauge("process.peak_rss_bytes").value(), 0.0);
  EXPECT_GE(gauge("process.cpu_user_s").value(), 0.0);

  // With metrics off the sampler thread runs but every update is gated off.
  set_level(Level::Off);
  reset();
  {
    ResourceSampler sampler(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  set_level(Level::Metrics);
  EXPECT_EQ(counter("obs.sampler_ticks").value(), 0);
}

}  // namespace
}  // namespace chronosync::obs
