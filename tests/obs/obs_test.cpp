// Tests for the obs span tracer and metrics registry: Chrome trace-event
// output shape (golden, via synthetic timestamps), multi-threaded recording
// (run under TSan in CI), ring overflow accounting, and level gating.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchkit/json.hpp"
#include "obs/registry.hpp"

namespace chronosync::obs {
namespace {

using benchkit::JsonValue;

/// Every test starts from a clean recording state at level Off and restores
/// it afterwards (ring capacity back to the library default, too — it only
/// affects threads registering after the call).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_level(Level::Off);
    reset();
    set_ring_capacity(1u << 15);
  }
  void TearDown() override {
    set_level(Level::Off);
    reset();
    set_ring_capacity(1u << 15);
  }
};

JsonValue write_and_parse() {
  std::ostringstream os;
  write_chrome_trace(os);
  return JsonValue::parse(os.str());
}

const JsonValue& trace_events(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  return *events;
}

/// Tid of the thread whose thread_name metadata equals `name`; -1 if absent.
int tid_of(const JsonValue& doc, const std::string& name) {
  for (const JsonValue& ev : trace_events(doc).items()) {
    const JsonValue* ph = ev.find("ph");
    const JsonValue* what = ev.find("name");
    if (ph == nullptr || ph->as_string() != "M") continue;
    if (what == nullptr || what->as_string() != "thread_name") continue;
    const JsonValue* args = ev.find("args");
    if (args == nullptr) continue;
    const JsonValue* n = args->find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) {
      return static_cast<int>(ev.find("tid")->as_number());
    }
  }
  return -1;
}

/// Chrome-trace validity: per-thread B/E sequences must nest (each E names
/// the innermost open B) and close by end of file.  Returns spans matched.
std::size_t expect_well_formed(const JsonValue& doc) {
  std::map<int, std::vector<std::string>> open;
  std::map<int, double> last_ts;
  std::size_t matched = 0;
  for (const JsonValue& ev : trace_events(doc).items()) {
    const std::string ph = ev.find("ph")->as_string();
    if (ph == "M") continue;
    const int tid = static_cast<int>(ev.find("tid")->as_number());
    const double ts = ev.find("ts")->as_number();
    EXPECT_GE(ts, 0.0);
    if (ph == "C") {
      const JsonValue* args = ev.find("args");
      EXPECT_NE(args, nullptr);
      const JsonValue* value = args == nullptr ? nullptr : args->find("value");
      EXPECT_NE(value, nullptr);
      if (value != nullptr) EXPECT_TRUE(value->is_number());
      continue;
    }
    // B/E on one thread must come out in non-decreasing timestamp order.
    auto [it, fresh] = last_ts.try_emplace(tid, ts);
    if (!fresh) EXPECT_GE(ts, it->second);
    it->second = ts;
    const std::string name = ev.find("name")->as_string();
    if (ph == "B") {
      open[tid].push_back(name);
    } else {
      EXPECT_EQ(ph, "E");
      EXPECT_FALSE(open[tid].empty()) << "'E' without open span on tid " << tid;
      if (open[tid].empty()) continue;
      EXPECT_EQ(open[tid].back(), name);
      open[tid].pop_back();
      ++matched;
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  return matched;
}

TEST_F(ObsTest, LevelRoundTripsThroughNames) {
  for (Level level : {Level::Off, Level::Metrics, Level::Trace}) {
    Level parsed = Level::Off;
    ASSERT_TRUE(parse_level(to_string(level), parsed));
    EXPECT_EQ(parsed, level);
  }
  Level ignored = Level::Off;
  EXPECT_FALSE(parse_level("verbose", ignored));
  EXPECT_FALSE(parse_level("", ignored));
}

TEST_F(ObsTest, GoldenTraceShapeFromSyntheticTimestamps) {
  set_level(Level::Trace);
  // Synthetic timestamps make the exported event sequence fully
  // deterministic; a dedicated named thread isolates it from any recording
  // the test process did elsewhere.
  std::thread recorder([] {
    set_thread_name("golden");
    detail::record_counter("golden.counter", 2500, 7.0);
    detail::record_span("inner", 2000, 4000);  // children record first
    detail::record_span("outer", 1000, 9000);
    detail::record_counter("golden.fraction", 5000, 0.25);
  });
  recorder.join();

  const JsonValue doc = write_and_parse();
  ASSERT_NE(doc.find("displayTimeUnit"), nullptr);
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  ASSERT_NE(doc.find("otherData"), nullptr);
  EXPECT_EQ(doc.find("otherData")->find("generator")->as_string(), "chronosync-obs");

  const int tid = tid_of(doc, "golden");
  ASSERT_GE(tid, 0);
  expect_well_formed(doc);

  // Exact (ph, ts, name[, value]) sequence for the golden thread.  ts is
  // microseconds with fixed millisecond-of-a-microsecond precision.
  std::vector<std::string> got;
  for (const JsonValue& ev : trace_events(doc).items()) {
    if (ev.find("ph")->as_string() == "M") continue;
    if (static_cast<int>(ev.find("tid")->as_number()) != tid) continue;
    // The trailing drop-summary counter rides on tid 0, not the recorder.
    if (ev.find("name")->as_string() == "obs.dropped_spans") continue;
    std::ostringstream line;
    line << ev.find("ph")->as_string() << ' ' << ev.find("ts")->as_number() << ' '
         << ev.find("name")->as_string();
    if (const JsonValue* args = ev.find("args"); args != nullptr) {
      line << ' ' << args->find("value")->as_number();
    }
    got.push_back(line.str());
  }
  const std::vector<std::string> want = {
      "B 1 outer", "B 2 inner", "E 4 inner", "E 9 outer",
      "C 2.5 golden.counter 7", "C 5 golden.fraction 0.25",
  };
  EXPECT_EQ(got, want);

  // Counter events carry a per-thread series id.
  for (const JsonValue& ev : trace_events(doc).items()) {
    if (ev.find("ph")->as_string() != "C") continue;
    if (static_cast<int>(ev.find("tid")->as_number()) != tid) continue;
    if (ev.find("name")->as_string() == "obs.dropped_spans") continue;
    ASSERT_NE(ev.find("id"), nullptr);
    EXPECT_EQ(ev.find("id")->as_string(), "t" + std::to_string(tid));
  }
}

TEST_F(ObsTest, EightThreadsOverlappingSpansStayWellNested) {
  set_level(Level::Trace);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t] {
      set_thread_name("worker-" + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        CS_SPAN("test.outer");
        counter_sample("test.progress", i);
        {
          CS_SPAN("test.inner");
          counter_sample("test.depth", 2);
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();

  const TraceStats stats = trace_stats();
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.spans, static_cast<std::uint64_t>(kThreads) * kIters * 2);
  EXPECT_EQ(stats.counter_samples, static_cast<std::uint64_t>(kThreads) * kIters * 2);

  const JsonValue doc = write_and_parse();
  EXPECT_EQ(expect_well_formed(doc), stats.spans);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_GE(tid_of(doc, "worker-" + std::to_string(t)), 0) << t;
  }
}

TEST_F(ObsTest, RingOverflowCountsDropsAndKeepsOutputParseable) {
  set_level(Level::Trace);
  set_ring_capacity(16);
  constexpr int kSpans = 100;
  // The shrunken capacity only applies to threads registering afterwards, so
  // record from a fresh one.
  std::thread recorder([] {
    set_thread_name("overflow");
    for (int i = 0; i < kSpans; ++i) {
      CS_SPAN("test.flood");
    }
  });
  recorder.join();

  const TraceStats stats = trace_stats();
  EXPECT_EQ(stats.dropped, static_cast<std::uint64_t>(kSpans - 16));

  // Drops also surface as a registry counter for --metrics-out consumers.
  const std::int64_t dropped_metric = counter("obs.dropped_spans").value();
  EXPECT_EQ(dropped_metric, kSpans - 16);

  const JsonValue doc = write_and_parse();
  expect_well_formed(doc);

  // The exported trace ends with the obs.dropped_spans counter track.
  double last_dropped = -1.0;
  for (const JsonValue& ev : trace_events(doc).items()) {
    const JsonValue* name = ev.find("name");
    if (ev.find("ph")->as_string() == "C" && name->as_string() == "obs.dropped_spans") {
      last_dropped = ev.find("args")->find("value")->as_number();
    }
  }
  EXPECT_EQ(last_dropped, static_cast<double>(kSpans - 16));
}

TEST_F(ObsTest, DisabledLevelsRecordNothing) {
  set_level(Level::Off);
  std::thread recorder([] {
    CS_SPAN("test.invisible");
    counter_sample("test.invisible", 1.0);
  });
  recorder.join();
  EXPECT_EQ(trace_stats().spans, 0u);
  EXPECT_EQ(trace_stats().counter_samples, 0u);

  // Metrics level accumulates registry values but records no timeline.
  set_level(Level::Metrics);
  counter("test.metrics_only").add(3);
  counter_sample("test.metrics_only", 1.0);
  EXPECT_EQ(counter("test.metrics_only").value(), 3);
  EXPECT_EQ(trace_stats().counter_samples, 0u);
}

TEST_F(ObsTest, RegistryAggregatesAcrossThreadsAndSnapshots) {
  set_level(Level::Metrics);
  constexpr int kThreads = 8;
  constexpr int kAdds = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      Counter& c = counter("test.reg_counter");
      Histo& h = histogram("test.reg_histo", 0.0, 100.0, 10);
      for (int i = 0; i < kAdds; ++i) {
        c.add(1);
        h.add(static_cast<double>(i % 100));
      }
      gauge("test.reg_gauge").set(42.5);
    });
  }
  for (std::thread& th : pool) th.join();

  EXPECT_EQ(counter("test.reg_counter").value(), kThreads * kAdds);
  EXPECT_EQ(gauge("test.reg_gauge").value(), 42.5);
  const RunningStats merged = histogram("test.reg_histo", 0.0, 100.0, 10).merged_stats();
  EXPECT_EQ(merged.count(), static_cast<std::size_t>(kThreads) * kAdds);
  EXPECT_EQ(merged.min(), 0.0);
  EXPECT_EQ(merged.max(), 99.0);

  std::map<std::string, double> snap;
  for (const auto& [name, value] : metrics_snapshot()) snap[name] = value;
  EXPECT_EQ(snap.at("test.reg_counter"), static_cast<double>(kThreads * kAdds));
  EXPECT_EQ(snap.at("test.reg_gauge"), 42.5);
  EXPECT_EQ(snap.at("test.reg_histo.count"), static_cast<double>(kThreads * kAdds));
  EXPECT_EQ(snap.at("test.reg_histo.min"), 0.0);
  EXPECT_EQ(snap.at("test.reg_histo.max"), 99.0);

  // reset() zeroes values but keeps registrations (and handles) alive.
  reset();
  EXPECT_EQ(counter("test.reg_counter").value(), 0);
  EXPECT_EQ(histogram("test.reg_histo", 0.0, 100.0, 10).merged_stats().count(), 0u);
}

TEST_F(ObsTest, QuantileHistoGoldenQuantilesOnKnownDistributions) {
  set_level(Level::Metrics);
  // Uniform 1..1000 ms: the true q-quantile is q seconds; the log-bucketed
  // estimate must land within one bucket ratio (2^(1/16), < 4.5% relative).
  QuantileHisto& uniform = quantile_histogram("test.q_uniform");
  for (int i = 1; i <= 1000; ++i) uniform.add(static_cast<double>(i) * 1e-3);
  const QuantileSnapshot u = uniform.snapshot();
  EXPECT_EQ(u.count, 1000u);
  EXPECT_EQ(u.underflow, 0u);
  EXPECT_EQ(u.invalid, 0u);
  EXPECT_EQ(u.min, 1e-3);  // min/max are exact, not bucketed
  EXPECT_EQ(u.max, 1.0);
  constexpr double kRelTol = 0.045;
  EXPECT_NEAR(u.quantile(0.50), 0.500, 0.500 * kRelTol);
  EXPECT_NEAR(u.quantile(0.90), 0.900, 0.900 * kRelTol);
  EXPECT_NEAR(u.quantile(0.99), 0.990, 0.990 * kRelTol);
  EXPECT_NEAR(u.quantile(0.999), 0.999, 0.999 * kRelTol);

  // Bimodal 90/10: the tail quantiles must jump to the far mode.
  QuantileHisto& bimodal = quantile_histogram("test.q_bimodal");
  for (int i = 0; i < 90; ++i) bimodal.add(1.0);
  for (int i = 0; i < 10; ++i) bimodal.add(100.0);
  const QuantileSnapshot b = bimodal.snapshot();
  EXPECT_NEAR(b.quantile(0.50), 1.0, 1.0 * kRelTol);
  EXPECT_NEAR(b.quantile(0.90), 1.0, 1.0 * kRelTol);
  EXPECT_NEAR(b.quantile(0.99), 100.0, 100.0 * kRelTol);
  EXPECT_NEAR(b.quantile(1.0), 100.0, 100.0 * kRelTol);
}

TEST_F(ObsTest, QuantileHistoEdgeSemantics) {
  set_level(Level::Metrics);
  QuantileHisto& q = quantile_histogram("test.q_edges");

  // Below-range samples (zero and negatives included) land in the underflow
  // bucket but still update the exact min.
  q.add(0.0);
  q.add(-5.0);
  QuantileSnapshot snap = q.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.underflow, 2u);
  EXPECT_EQ(snap.min, -5.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.quantile(0.0), -5.0);  // any rank inside the underflow -> min

  // NaN is tallied separately and never contributes to count or quantiles.
  q.add(std::numeric_limits<double>::quiet_NaN());
  snap = q.snapshot();
  EXPECT_EQ(snap.invalid, 1u);
  EXPECT_EQ(snap.count, 2u);

  // reset() zeroes the shards and the exact min/max.
  reset();
  snap = quantile_histogram("test.q_edges").snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.underflow, 0u);
  EXPECT_EQ(snap.invalid, 0u);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);

  // With metrics off, add() is a no-op beyond the level check.
  set_level(Level::Off);
  quantile_histogram("test.q_edges").add(1.0);
  EXPECT_TRUE(quantile_histogram("test.q_edges").snapshot().empty());
}

TEST_F(ObsTest, QuantileHistoShardMergeIsDeterministicUnderConcurrentAdd) {
  set_level(Level::Metrics);
  // The same multiset added concurrently from 8 threads and serially from
  // one must produce bit-identical snapshots: integer bucket counts merge
  // commutatively and min/max maintenance is order-independent.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  auto value_at = [](int index) {
    // Deterministic spread over ~6 decades, underflow included.
    const double base = std::exp2(static_cast<double>(index % 40) - 20.0);
    return (index % 97 == 0) ? -base : base * (1.0 + 1e-3 * (index % 13));
  };

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, value_at] {
      QuantileHisto& q = quantile_histogram("test.q_concurrent");
      for (int i = 0; i < kPerThread; ++i) q.add(value_at(t * kPerThread + i));
    });
  }
  for (std::thread& th : pool) th.join();
  const QuantileSnapshot concurrent = quantile_histogram("test.q_concurrent").snapshot();

  QuantileHisto& serial = quantile_histogram("test.q_serial");
  for (int i = 0; i < kThreads * kPerThread; ++i) serial.add(value_at(i));
  const QuantileSnapshot expected = serial.snapshot();

  EXPECT_EQ(concurrent.count, expected.count);
  EXPECT_EQ(concurrent.underflow, expected.underflow);
  EXPECT_EQ(concurrent.invalid, expected.invalid);
  EXPECT_EQ(concurrent.buckets, expected.buckets);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(concurrent.quantile(q)),
              std::bit_cast<std::uint64_t>(expected.quantile(q)))
        << "quantile " << q;
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(concurrent.min),
            std::bit_cast<std::uint64_t>(expected.min));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(concurrent.max),
            std::bit_cast<std::uint64_t>(expected.max));
}

TEST_F(ObsTest, QuantileHistoSurfacesInMetricsSnapshot) {
  set_level(Level::Metrics);
  QuantileHisto& q = quantile_histogram("test.q_snapshot");
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i));

  std::map<std::string, double> snap;
  for (const auto& [name, value] : metrics_snapshot()) snap[name] = value;
  EXPECT_EQ(snap.at("test.q_snapshot.count"), 100.0);
  EXPECT_EQ(snap.at("test.q_snapshot.min"), 1.0);
  EXPECT_EQ(snap.at("test.q_snapshot.max"), 100.0);
  EXPECT_EQ(snap.at("test.q_snapshot.p50"), q.snapshot().quantile(0.5));
  EXPECT_EQ(snap.at("test.q_snapshot.p90"), q.snapshot().quantile(0.9));
  EXPECT_EQ(snap.at("test.q_snapshot.p99"), q.snapshot().quantile(0.99));
  EXPECT_EQ(snap.at("test.q_snapshot.p999"), q.snapshot().quantile(0.999));
}

}  // namespace
}  // namespace chronosync::obs
