#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace chronosync {
namespace {

TEST(Engine, CallbacksFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, EqualTimesFireInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(1.0, [&, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, PastTimesClampToNow) {
  Engine e;
  Time seen = -1.0;
  e.schedule(5.0, [&] {
    e.schedule(1.0, [&] { seen = e.now(); });  // in the past: fires "now"
  });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Engine, SimpleCoroutineDelays) {
  Engine e;
  std::vector<Time> stamps;
  auto body = [&]() -> Coro<void> {
    stamps.push_back(e.now());
    co_await e.delay(2.0);
    stamps.push_back(e.now());
    co_await e.delay(3.0);
    stamps.push_back(e.now());
  };
  e.spawn(body());
  e.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_DOUBLE_EQ(stamps[0], 0.0);
  EXPECT_DOUBLE_EQ(stamps[1], 2.0);
  EXPECT_DOUBLE_EQ(stamps[2], 5.0);
  EXPECT_EQ(e.completed(), 1);
  EXPECT_FALSE(e.deadlocked());
}

TEST(Engine, SpawnAtLaterTime) {
  Engine e;
  Time started = -1.0;
  auto body = [&]() -> Coro<void> {
    started = e.now();
    co_return;
  };
  e.spawn(body(), 7.5);
  e.run();
  EXPECT_DOUBLE_EQ(started, 7.5);
}

TEST(Engine, NestedCoroutineCalls) {
  Engine e;
  std::vector<std::string> log;
  struct Helper {
    static Coro<int> inner(Engine& e, std::vector<std::string>& log) {
      log.push_back("inner-start");
      co_await e.delay(1.0);
      log.push_back("inner-end");
      co_return 42;
    }
    static Coro<void> outer(Engine& e, std::vector<std::string>& log) {
      log.push_back("outer-start");
      const int v = co_await inner(e, log);
      log.push_back("outer-got-" + std::to_string(v));
    }
  };
  e.spawn(Helper::outer(e, log));
  e.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[3], "outer-got-42");
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
}

TEST(Engine, DeeplyNestedCallsDoNotOverflow) {
  Engine e;
  struct Helper {
    static Coro<int> countdown(Engine& e, int n) {
      if (n == 0) co_return 0;
      co_await e.delay(0.001);
      const int v = co_await countdown(e, n - 1);
      co_return v + 1;
    }
    static Coro<void> top(Engine& e, int* out) {
      *out = co_await countdown(e, 5000);
    }
  };
  int result = 0;
  e.spawn(Helper::top(e, &result));
  e.run();
  EXPECT_EQ(result, 5000);
}

TEST(Engine, InterleavesProcesses) {
  Engine e;
  std::vector<int> order;
  auto proc = [&](int id, double step) -> Coro<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(step);
      order.push_back(id);
    }
  };
  e.spawn(proc(1, 1.0));  // fires at 1, 2, 3
  e.spawn(proc(2, 1.5));  // fires at 1.5, 3, 4.5; at t=3 it was scheduled first
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
  EXPECT_EQ(e.completed(), 2);
}

TEST(Engine, TriggerResumesWaiterAtFireTime) {
  Engine e;
  Trigger tr(e);
  Time resumed = -1.0;
  auto waiter = [&]() -> Coro<void> {
    co_await tr;
    resumed = e.now();
  };
  e.spawn(waiter());
  e.schedule(4.0, [&] { tr.fire(e.now()); });
  e.run();
  EXPECT_DOUBLE_EQ(resumed, 4.0);
  EXPECT_TRUE(tr.fired());
}

TEST(Engine, TriggerFiredBeforeAwaitIsImmediate) {
  Engine e;
  Trigger tr(e);
  Time resumed = -1.0;
  auto waiter = [&]() -> Coro<void> {
    co_await e.delay(5.0);
    co_await tr;  // fired at t=1: ready immediately
    resumed = e.now();
  };
  e.spawn(waiter());
  e.schedule(1.0, [&] { tr.fire(e.now()); });
  e.run();
  EXPECT_DOUBLE_EQ(resumed, 5.0);
}

TEST(Engine, DeadlockDetected) {
  Engine e;
  Trigger tr(e);  // never fired
  auto waiter = [&]() -> Coro<void> { co_await tr; };
  e.spawn(waiter());
  e.run();
  EXPECT_TRUE(e.deadlocked());
  EXPECT_EQ(e.completed(), 0);
}

TEST(Engine, ProcessExceptionPropagates) {
  Engine e;
  auto bad = [&]() -> Coro<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  };
  e.spawn(bad());
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, ExceptionInNestedCallPropagates) {
  Engine e;
  struct Helper {
    static Coro<int> inner(Engine& e) {
      co_await e.delay(1.0);
      throw std::runtime_error("nested-boom");
    }
    static Coro<void> outer(Engine& e) {
      (void)co_await inner(e);
    }
  };
  e.spawn(Helper::outer(e));
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, MaxEventsBound) {
  Engine e;
  auto forever = [&]() -> Coro<void> {
    for (;;) co_await e.delay(1.0);
  };
  e.spawn(forever());
  const auto fired = e.run(100);
  EXPECT_EQ(fired, 100u);
}

TEST(Engine, ManyProcessesComplete) {
  Engine e;
  int done = 0;
  auto proc = [&](int hops) -> Coro<void> {
    for (int i = 0; i < hops; ++i) co_await e.delay(0.5);
    ++done;
  };
  for (int p = 0; p < 100; ++p) e.spawn(proc(p % 7 + 1));
  e.run();
  EXPECT_EQ(done, 100);
  EXPECT_EQ(e.completed(), 100);
}

TEST(Engine, TeardownOfSuspendedProcessesIsClean) {
  // Destroying an engine with still-suspended coroutines (deadlock) must not
  // leak or crash; exercised under ASan in CI-like runs.
  Engine e;
  Trigger tr(e);
  auto waiter = [&]() -> Coro<void> {
    co_await tr;
  };
  e.spawn(waiter());
  e.run();
  EXPECT_TRUE(e.deadlocked());
  // e's destructor runs here.
}

}  // namespace
}  // namespace chronosync
