#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/expect.hpp"
#include "common/table.hpp"

namespace chronosync {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"latency", "4.29"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("latency"), std::string::npos);
  EXPECT_NE(s.find("4.29"), std::string::npos);
}

TEST(AsciiTable, RejectsWidthMismatch) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiTable, NumberFormatting) {
  EXPECT_EQ(AsciiTable::num(4.288, 2), "4.29");
  EXPECT_EQ(AsciiTable::sci(0.00098, 2), "9.80e-04");
}

TEST(CsvWriter, WritesRows) {
  const std::string path = testing::TempDir() + "/cs_test.csv";
  {
    CsvWriter w(path, {"t", "dev"});
    w.add_row({1.0, 2.5});
    w.add_row(std::vector<std::string>{"x", "y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,dev");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWidthMismatch) {
  const std::string path = testing::TempDir() + "/cs_test2.csv";
  CsvWriter w(path, {"a"});
  EXPECT_THROW(w.add_row({1.0, 2.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--seed", "7", "--runtime=300", "input.txt", "--verbose"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("seed", 0), 7);
  EXPECT_EQ(cli.get_int("runtime", 0), 300);
  EXPECT_TRUE(cli.has("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, OptionConsumesFollowingValue) {
  // `--flag token` treats the token as the flag's value; a bare token is
  // positional only when not preceded by a valueless option.
  const char* argv[] = {"prog", "--verbose", "input.txt"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get("verbose", ""), "input.txt");
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(cli.get_seed(42), 42u);
}

TEST(Cli, SeedOption) {
  const char* argv[] = {"prog", "--seed=99"};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get_seed(), 99u);
}

// Regression: get_int used to atoll() the value, so "--reps=abc" silently
// became 0 and "--reps=10x" became 10.  Both must be rejected now.
TEST(Cli, GetIntRejectsNonNumeric) {
  const char* argv[] = {"prog", "--reps=abc"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("reps", 1), std::invalid_argument);
}

TEST(Cli, GetIntRejectsTrailingGarbage) {
  const char* argv[] = {"prog", "--reps=10x"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("reps", 1), std::invalid_argument);
}

TEST(Cli, GetDoubleRejectsNonNumeric) {
  const char* argv[] = {"prog", "--gap=fast", "--tol=1.5e"};
  Cli cli(3, argv);
  EXPECT_THROW(cli.get_double("gap", 1.0), std::invalid_argument);
  EXPECT_THROW(cli.get_double("tol", 1.0), std::invalid_argument);
}

TEST(Cli, GetIntRejectsEmptyValue) {
  const char* argv[] = {"prog", "--reps="};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("reps", 1), std::invalid_argument);
}

TEST(Cli, NegativeValuesParse) {
  // "--offset -3" (separate token) and "--offset=-3" must both yield -3,
  // not treat the value as a stray positional.
  const char* argv[] = {"prog", "--offset", "-3", "--scale=-2.5"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("offset", 0), -3);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 0.0), -2.5);
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, GetIntRejectsOutOfRange) {
  const char* argv[] = {"prog", "--big=99999999999999999999999"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("big", 0), std::invalid_argument);
}

TEST(Cli, GetIntListParsesCommaSeparatedSweeps) {
  const char* argv[] = {"prog", "--ranks=8,64,256", "--events", "100000"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.get_int_list("ranks", {}), (std::vector<std::int64_t>{8, 64, 256}));
  // A single integer is a one-element sweep; an absent option yields the
  // fallback untouched.
  EXPECT_EQ(cli.get_int_list("events", {}), (std::vector<std::int64_t>{100000}));
  EXPECT_EQ(cli.get_int_list("threads", {1, 2}), (std::vector<std::int64_t>{1, 2}));
}

TEST(Cli, GetIntListRejectsMalformedElements) {
  const char* argv[] = {"prog", "--a=1,x,3", "--b=1,,3", "--c=1,2,"};
  Cli cli(4, argv);
  EXPECT_THROW(cli.get_int_list("a", {}), std::invalid_argument);
  EXPECT_THROW(cli.get_int_list("b", {}), std::invalid_argument);
  EXPECT_THROW(cli.get_int_list("c", {}), std::invalid_argument);
}

TEST(Cli, GetIntListRejectsEmptyValueAndLoneComma) {
  // `--a=` and `--b=,` both decay to empty elements, never to an empty list:
  // a present-but-valueless sweep option is a user error, not "use defaults".
  const char* argv[] = {"prog", "--a=", "--b=,"};
  Cli cli(3, argv);
  EXPECT_THROW(cli.get_int_list("a", {1}), std::invalid_argument);
  EXPECT_THROW(cli.get_int_list("b", {1}), std::invalid_argument);
}

TEST(Cli, GetIntListKeepsDuplicatesAndOrder) {
  // Duplicates are legitimate sweep points (repeat a config to measure
  // variance); the parser must not dedupe or sort.
  const char* argv[] = {"prog", "--ranks=8,8,4,8"};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get_int_list("ranks", {}), (std::vector<std::int64_t>{8, 8, 4, 8}));
}

TEST(Cli, GetIntListParsesNegativeAndInt64Extremes) {
  const char* argv[] = {"prog",
                        "--a=-3,0,5",
                        "--b=9223372036854775807,-9223372036854775808"};
  Cli cli(3, argv);
  EXPECT_EQ(cli.get_int_list("a", {}), (std::vector<std::int64_t>{-3, 0, 5}));
  EXPECT_EQ(cli.get_int_list("b", {}),
            (std::vector<std::int64_t>{INT64_MAX, INT64_MIN}));
}

TEST(Cli, GetIntListRejectsOverflowingElements) {
  // One element past INT64_MAX/MIN must fail the whole list loudly, not
  // saturate silently.
  const char* argv[] = {"prog", "--a=1,9223372036854775808",
                        "--b=-9223372036854775809"};
  Cli cli(3, argv);
  EXPECT_THROW(cli.get_int_list("a", {}), std::invalid_argument);
  EXPECT_THROW(cli.get_int_list("b", {}), std::invalid_argument);
}

TEST(Cli, GetIntListRejectsLeadingCommaToleratesSpaceAfterComma) {
  const char* argv[] = {"prog", "--a=,1,2", "--b=1, 2", "--c=1,2 "};
  Cli cli(4, argv);
  EXPECT_THROW(cli.get_int_list("a", {}), std::invalid_argument);
  // strtoll skips leading whitespace, so a space after the comma is accepted
  // (shell-quoted "1, 2" works); trailing junk after the digits is not.
  EXPECT_EQ(cli.get_int_list("b", {}), (std::vector<std::int64_t>{1, 2}));
  EXPECT_THROW(cli.get_int_list("c", {}), std::invalid_argument);
}

TEST(Expect, RequireThrowsInvalidArgument) {
  EXPECT_THROW(CS_REQUIRE(false, "msg"), std::invalid_argument);
  EXPECT_NO_THROW(CS_REQUIRE(true, "msg"));
}

TEST(Expect, EnsureThrowsLogicError) {
  EXPECT_THROW(CS_ENSURE(false, "msg"), std::logic_error);
}

}  // namespace
}  // namespace chronosync
