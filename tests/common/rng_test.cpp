#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace chronosync {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsReversedBounds) {
  Rng r(13);
  EXPECT_THROW(r.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng r(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng r(19);
  EXPECT_THROW(r.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, LognormalMedian) {
  Rng r(31);
  std::vector<double> v;
  for (int i = 0; i < 50001; ++i) v.push_back(r.lognormal(1.0, 0.5));
  std::sort(v.begin(), v.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(v[v.size() / 2], std::exp(1.0), 0.05);
}

TEST(RngTree, NamedStreamsAreStable) {
  RngTree t(99);
  EXPECT_EQ(t.derive("alpha"), t.derive("alpha"));
  EXPECT_NE(t.derive("alpha"), t.derive("beta"));
}

TEST(RngTree, ChildTreesAreIndependentNamespaces) {
  RngTree t(99);
  EXPECT_NE(t.child("a").derive("x"), t.child("b").derive("x"));
  EXPECT_NE(t.derive("a"), t.child("a").derive("a"));
}

TEST(RngTree, SameSeedSameHierarchy) {
  RngTree a(5), b(5);
  EXPECT_EQ(a.child("n1").child("c2").derive("wander"),
            b.child("n1").child("c2").derive("wander"));
}

TEST(RngTree, StreamsFromDifferentNamesDecorrelate) {
  RngTree t(1);
  Rng a = t.stream("s1");
  Rng b = t.stream("s2");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(HashName, DistinctShortNames) {
  EXPECT_NE(hash_name("a"), hash_name("b"));
  EXPECT_NE(hash_name(""), hash_name("a"));
  EXPECT_EQ(hash_name("node1"), hash_name("node1"));
}

}  // namespace
}  // namespace chronosync
