#include "common/mathutil.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chronosync {
namespace {

TEST(FitLine, ExactLine) {
  std::vector<Point2> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({static_cast<double>(i), 3.0 * i + 1.0});
  }
  const LinearFit f = fit_line(pts);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.residual_stddev, 0.0, 1e-9);
}

TEST(FitLine, NoisyLineRecoversSlope) {
  Rng r(5);
  std::vector<Point2> pts;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(0.0, 100.0);
    pts.push_back({x, 2.0 * x - 7.0 + r.normal(0.0, 0.5)});
  }
  const LinearFit f = fit_line(pts);
  EXPECT_NEAR(f.slope, 2.0, 0.01);
  EXPECT_NEAR(f.intercept, -7.0, 0.5);
  EXPECT_NEAR(f.residual_stddev, 0.5, 0.05);
}

TEST(FitLine, RejectsDegenerate) {
  EXPECT_THROW(fit_line({{1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(fit_line({{1.0, 2.0}, {1.0, 3.0}}), std::invalid_argument);
}

TEST(ConvexHull, LowerHullOfSquare) {
  // Monotone chain runs from the lexicographically first to the last point,
  // so the right edge's top corner terminates the chain.
  std::vector<Point2> pts = {{0, 0}, {1, 1}, {0, 1}, {1, 0}, {0.5, 0.5}};
  const auto hull = lower_convex_hull(pts);
  ASSERT_EQ(hull.size(), 3u);
  EXPECT_DOUBLE_EQ(hull[0].x, 0.0);
  EXPECT_DOUBLE_EQ(hull[0].y, 0.0);
  EXPECT_DOUBLE_EQ(hull[1].x, 1.0);
  EXPECT_DOUBLE_EQ(hull[1].y, 0.0);
  EXPECT_DOUBLE_EQ(hull[2].y, 1.0);
}

TEST(ConvexHull, UpperHullOfSquare) {
  std::vector<Point2> pts = {{0, 0}, {1, 1}, {0, 1}, {1, 0}, {0.5, 0.2}};
  const auto hull = upper_convex_hull(pts);
  ASSERT_EQ(hull.size(), 3u);
  EXPECT_DOUBLE_EQ(hull[0].y, 0.0);  // chain starts at (0,0)
  EXPECT_DOUBLE_EQ(hull[1].y, 1.0);  // rises to (0,1)
  EXPECT_DOUBLE_EQ(hull[2].y, 1.0);  // ends at (1,1); (0.5,0.2) is inside
}

TEST(ConvexHull, AllPointsAboveLowerHull) {
  Rng r(9);
  std::vector<Point2> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({r.uniform(0.0, 10.0), r.normal(0.0, 1.0)});
  }
  const auto hull = lower_convex_hull(pts);
  PiecewiseLinear env(hull);
  for (const auto& p : pts) {
    EXPECT_GE(p.y, env(p.x) - 1e-9);
  }
}

TEST(ConvexHull, KeepsCollinearEndpoints) {
  std::vector<Point2> pts = {{0, 0}, {1, 1}, {2, 2}};
  const auto hull = lower_convex_hull(pts);
  EXPECT_GE(hull.size(), 2u);
  EXPECT_DOUBLE_EQ(hull.front().x, 0.0);
  EXPECT_DOUBLE_EQ(hull.back().x, 2.0);
}

TEST(PiecewiseLinear, InterpolatesAndExtrapolates) {
  PiecewiseLinear f({{0.0, 0.0}, {10.0, 20.0}, {20.0, 20.0}});
  EXPECT_DOUBLE_EQ(f(5.0), 10.0);
  EXPECT_DOUBLE_EQ(f(15.0), 20.0);
  EXPECT_DOUBLE_EQ(f(-5.0), -10.0);  // extrapolates first segment
  EXPECT_DOUBLE_EQ(f(30.0), 20.0);   // extrapolates last (flat) segment
}

TEST(PiecewiseLinear, SlopeAt) {
  PiecewiseLinear f({{0.0, 0.0}, {10.0, 20.0}, {20.0, 20.0}});
  EXPECT_DOUBLE_EQ(f.slope_at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(f.slope_at(15.0), 0.0);
  EXPECT_DOUBLE_EQ(f.slope_at(100.0), 0.0);
}

TEST(PiecewiseLinear, AppendEnforcesOrder) {
  PiecewiseLinear f;
  f.append(0.0, 1.0);
  f.append(1.0, 2.0);
  EXPECT_THROW(f.append(1.0, 3.0), std::invalid_argument);
  EXPECT_THROW(f.append(0.5, 3.0), std::invalid_argument);
}

TEST(PiecewiseLinear, SingleKnotIsConstant) {
  PiecewiseLinear f({{5.0, 7.0}});
  EXPECT_DOUBLE_EQ(f(0.0), 7.0);
  EXPECT_DOUBLE_EQ(f(100.0), 7.0);
}

TEST(PiecewiseLinear, EmptyThrows) {
  PiecewiseLinear f;
  EXPECT_THROW(f(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
