#include "common/mathutil.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chronosync {
namespace {

TEST(FitLine, ExactLine) {
  std::vector<Point2> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({static_cast<double>(i), 3.0 * i + 1.0});
  }
  const LinearFit f = fit_line(pts);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.residual_stddev, 0.0, 1e-9);
}

TEST(FitLine, NoisyLineRecoversSlope) {
  Rng r(5);
  std::vector<Point2> pts;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(0.0, 100.0);
    pts.push_back({x, 2.0 * x - 7.0 + r.normal(0.0, 0.5)});
  }
  const LinearFit f = fit_line(pts);
  EXPECT_NEAR(f.slope, 2.0, 0.01);
  EXPECT_NEAR(f.intercept, -7.0, 0.5);
  EXPECT_NEAR(f.residual_stddev, 0.5, 0.05);
}

TEST(FitLine, RejectsDegenerate) {
  EXPECT_THROW(fit_line({{1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(fit_line({{1.0, 2.0}, {1.0, 3.0}}), std::invalid_argument);
}

TEST(ConvexHull, LowerHullOfSquare) {
  // The chains are envelopes over x, not closed polygons: a vertical edge
  // collapses to its extreme for the chain's side, so the lower hull of the
  // unit square is just its bottom edge.
  std::vector<Point2> pts = {{0, 0}, {1, 1}, {0, 1}, {1, 0}, {0.5, 0.5}};
  const auto hull = lower_convex_hull(pts);
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_DOUBLE_EQ(hull[0].x, 0.0);
  EXPECT_DOUBLE_EQ(hull[0].y, 0.0);
  EXPECT_DOUBLE_EQ(hull[1].x, 1.0);
  EXPECT_DOUBLE_EQ(hull[1].y, 0.0);
}

TEST(ConvexHull, UpperHullOfSquare) {
  std::vector<Point2> pts = {{0, 0}, {1, 1}, {0, 1}, {1, 0}, {0.5, 0.2}};
  const auto hull = upper_convex_hull(pts);
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_DOUBLE_EQ(hull[0].y, 1.0);  // top edge: (0,1) ...
  EXPECT_DOUBLE_EQ(hull[1].y, 1.0);  // ... to (1,1); interior points are below
}

TEST(ConvexHull, AllPointsAboveLowerHull) {
  Rng r(9);
  std::vector<Point2> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({r.uniform(0.0, 10.0), r.normal(0.0, 1.0)});
  }
  const auto hull = lower_convex_hull(pts);
  PiecewiseLinear env(hull);
  for (const auto& p : pts) {
    EXPECT_GE(p.y, env(p.x) - 1e-9);
  }
}

TEST(ConvexHull, KeepsCollinearEndpoints) {
  std::vector<Point2> pts = {{0, 0}, {1, 1}, {2, 2}};
  const auto hull = lower_convex_hull(pts);
  EXPECT_GE(hull.size(), 2u);
  EXPECT_DOUBLE_EQ(hull.front().x, 0.0);
  EXPECT_DOUBLE_EQ(hull.back().x, 2.0);
}

// Degenerate clouds the error-estimation bound construction feeds in: the
// hull must always come back non-empty and usable as an envelope.
TEST(ConvexHull, DuplicatePointsCollapse) {
  std::vector<Point2> pts = {{1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}};
  const auto lower = lower_convex_hull(pts);
  const auto upper = upper_convex_hull(pts);
  ASSERT_FALSE(lower.empty());
  ASSERT_FALSE(upper.empty());
  PiecewiseLinear env(lower);
  EXPECT_DOUBLE_EQ(env(1.0), 2.0);
  EXPECT_DOUBLE_EQ(env(5.0), 2.0);  // single effective knot extrapolates flat
}

TEST(ConvexHull, TwoPointsAreTheHull) {
  std::vector<Point2> pts = {{0.0, 1.0}, {2.0, 3.0}};
  const auto lower = lower_convex_hull(pts);
  ASSERT_GE(lower.size(), 2u);
  EXPECT_DOUBLE_EQ(lower.front().x, 0.0);
  EXPECT_DOUBLE_EQ(lower.back().x, 2.0);
  PiecewiseLinear env(lower);
  EXPECT_DOUBLE_EQ(env(1.0), 2.0);
}

TEST(ConvexHull, VerticalStackKeepsExtremes) {
  // All points share one x: the lower hull must expose the minimum y and the
  // upper hull the maximum y, without an empty or unordered chain.
  std::vector<Point2> pts = {{3.0, 5.0}, {3.0, 1.0}, {3.0, 9.0}};
  const auto lower = lower_convex_hull(pts);
  const auto upper = upper_convex_hull(pts);
  ASSERT_FALSE(lower.empty());
  ASSERT_FALSE(upper.empty());
  EXPECT_DOUBLE_EQ(PiecewiseLinear(lower)(3.0), 1.0);
  EXPECT_DOUBLE_EQ(PiecewiseLinear(upper)(3.0), 9.0);
}

TEST(ConvexHull, SinglePointHull) {
  const auto hull = lower_convex_hull({{4.0, 2.0}});
  ASSERT_EQ(hull.size(), 1u);
  EXPECT_DOUBLE_EQ(PiecewiseLinear(hull)(0.0), 2.0);
}

TEST(PiecewiseLinear, InterpolatesAndExtrapolates) {
  PiecewiseLinear f({{0.0, 0.0}, {10.0, 20.0}, {20.0, 20.0}});
  EXPECT_DOUBLE_EQ(f(5.0), 10.0);
  EXPECT_DOUBLE_EQ(f(15.0), 20.0);
  EXPECT_DOUBLE_EQ(f(-5.0), -10.0);  // extrapolates first segment
  EXPECT_DOUBLE_EQ(f(30.0), 20.0);   // extrapolates last (flat) segment
}

TEST(PiecewiseLinear, SlopeAt) {
  PiecewiseLinear f({{0.0, 0.0}, {10.0, 20.0}, {20.0, 20.0}});
  EXPECT_DOUBLE_EQ(f.slope_at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(f.slope_at(15.0), 0.0);
  EXPECT_DOUBLE_EQ(f.slope_at(100.0), 0.0);
}

TEST(PiecewiseLinear, AppendEnforcesOrder) {
  PiecewiseLinear f;
  f.append(0.0, 1.0);
  f.append(1.0, 2.0);
  EXPECT_THROW(f.append(1.0, 3.0), std::invalid_argument);
  EXPECT_THROW(f.append(0.5, 3.0), std::invalid_argument);
}

TEST(PiecewiseLinear, SingleKnotIsConstant) {
  PiecewiseLinear f({{5.0, 7.0}});
  EXPECT_DOUBLE_EQ(f(0.0), 7.0);
  EXPECT_DOUBLE_EQ(f(100.0), 7.0);
}

TEST(PiecewiseLinear, EmptyThrows) {
  PiecewiseLinear f;
  EXPECT_THROW(f(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
