#include "common/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace chronosync {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
}

TEST(RunningStats, MinOfEmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.min(), std::invalid_argument);
  EXPECT_THROW(s.max(), std::invalid_argument);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng r(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(5.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamped into bin 0
  h.add(100.0);   // clamped into last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

// Regression: add() used to cast the raw bin position to std::size_t before
// clamping, which is UB for NaN and for values far outside the range.  The
// cast now happens after clamping, and NaN lands in a dedicated counter.
TEST(Histogram, NanGoesToInvalidCounter) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::nan(""));
  h.add(5.0);
  EXPECT_EQ(h.invalid(), 1u);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
}

TEST(Histogram, InfinitiesClampToEndBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(1e300);
  h.add(-1e300);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.invalid(), 0u);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  const std::string s = h.render();
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Summary, MatchesComponents) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_GT(s.p95, 90.0);
}

TEST(Summary, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace chronosync
