#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/crc32c.hpp"
#include "common/varint.hpp"

namespace chronosync {
namespace {

// RFC 3720 appendix B.4 test vectors (iSCSI CRC32C).
TEST(Crc32c, KnownVectors) {
  EXPECT_EQ(crc32c(0, "", 0), 0u);
  const std::string check = "123456789";
  EXPECT_EQ(crc32c(0, check.data(), check.size()), 0xE3069283u);
  const std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(crc32c(0, zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(0, ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<std::uint8_t> ascending(32);
  for (std::size_t i = 0; i < 32; ++i) ascending[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(crc32c(0, ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32c, PartialUpdatesCompose) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(0, data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = crc32c(0, data.data(), split);
    crc = crc32c(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::string data = "chronosync trace chunk payload";
  const std::uint32_t clean = crc32c(0, data.data(), data.size());
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(0, data.data(), data.size()), clean)
          << "undetected flip at byte " << byte << " bit " << bit;
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
    }
  }
}

TEST(Varint, UnsignedRoundTripAcrossBoundaries) {
  const std::uint64_t cases[] = {
      0,      1,          127,        128,         16383,
      16384,  2097151,    2097152,    268435455,   268435456,
      1u << 31, (1ull << 32) - 1, 1ull << 32, (1ull << 56) - 1, 1ull << 56,
      std::numeric_limits<std::uint64_t>::max() - 1,
      std::numeric_limits<std::uint64_t>::max(),
  };
  for (std::uint64_t v : cases) {
    std::vector<std::uint8_t> buf;
    put_uvarint(buf, v);
    EXPECT_LE(buf.size(), 10u);
    const std::uint8_t* cur = buf.data();
    std::uint64_t back = 0;
    ASSERT_TRUE(get_uvarint(&cur, buf.data() + buf.size(), back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_EQ(cur, buf.data() + buf.size()) << "decoder did not consume everything";
  }
}

TEST(Varint, SignedRoundTripIncludingExtremes) {
  const std::int64_t cases[] = {
      0,  1,  -1, 63, -64, 64,  -65, 8191, -8192,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
  };
  for (std::int64_t v : cases) {
    std::vector<std::uint8_t> buf;
    put_svarint(buf, v);
    const std::uint8_t* cur = buf.data();
    std::int64_t back = 0;
    ASSERT_TRUE(get_svarint(&cur, buf.data() + buf.size(), back)) << v;
    EXPECT_EQ(back, v);
  }
}

TEST(Varint, ZigzagKeepsSmallMagnitudesSmall) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  for (std::int64_t v = -300; v <= 300; ++v) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  std::vector<std::uint8_t> buf;
  put_svarint(buf, -3);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Varint, DecoderRejectsTruncation) {
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, std::numeric_limits<std::uint64_t>::max());
  for (std::size_t n = 0; n < buf.size(); ++n) {
    const std::uint8_t* cur = buf.data();
    std::uint64_t out = 0;
    EXPECT_FALSE(get_uvarint(&cur, buf.data() + n, out)) << "prefix " << n;
  }
}

TEST(Varint, DecoderRejectsOverlongEncodings) {
  // Eleven continuation bytes: more than a u64 can hold.
  std::vector<std::uint8_t> overlong(11, 0x80);
  overlong.push_back(0x00);
  const std::uint8_t* cur = overlong.data();
  std::uint64_t out = 0;
  EXPECT_FALSE(get_uvarint(&cur, overlong.data() + overlong.size(), out));

  // Exactly ten bytes but the last one carries bits beyond bit 63.
  std::vector<std::uint8_t> toobig(9, 0x80);
  toobig.push_back(0x02);
  cur = toobig.data();
  EXPECT_FALSE(get_uvarint(&cur, toobig.data() + toobig.size(), out));

  // Ten bytes whose final byte fits (bit 63 only) decode fine.
  std::vector<std::uint8_t> maxenc;
  put_uvarint(maxenc, std::numeric_limits<std::uint64_t>::max());
  ASSERT_EQ(maxenc.size(), 10u);
  cur = maxenc.data();
  EXPECT_TRUE(get_uvarint(&cur, maxenc.data() + maxenc.size(), out));
  EXPECT_EQ(out, std::numeric_limits<std::uint64_t>::max());
}

TEST(Varint, DecoderLeavesTrailingBytes) {
  std::vector<std::uint8_t> buf;
  put_uvarint(buf, 300);
  put_uvarint(buf, 7);
  const std::uint8_t* cur = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  ASSERT_TRUE(get_uvarint(&cur, end, a));
  ASSERT_TRUE(get_uvarint(&cur, end, b));
  EXPECT_EQ(a, 300u);
  EXPECT_EQ(b, 7u);
  EXPECT_EQ(cur, end);
}

}  // namespace
}  // namespace chronosync
