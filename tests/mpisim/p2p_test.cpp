#include <gtest/gtest.h>

#include "mpisim/job.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

JobConfig small_job(int ranks, TimerSpec timer = timer_specs::perfect()) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  cfg.timer = std::move(timer);
  cfg.seed = 42;
  return cfg;
}

TEST(P2P, MessageArrivesAfterMinLatency) {
  Job job(small_job(2));
  Time recv_done = -1.0, send_start = -1.0;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      send_start = p.now();
      co_await p.send(1, 5, 64);
    } else {
      co_await p.recv(0, 5);
      recv_done = p.now();
    }
  });
  EXPECT_GE(recv_done, send_start + 4.29 * units::us);
}

TEST(P2P, PayloadDataRoundTrips) {
  Job job(small_job(2));
  std::vector<double> got;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      std::vector<double> payload = {3.14, 2.71};
      co_await p.send(1, 1, 16, std::move(payload));
    } else {
      Message m = co_await p.recv(0, 1);
      got = m.data;
    }
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0], 3.14);
  EXPECT_DOUBLE_EQ(got[1], 2.71);
}

TEST(P2P, MessageFieldsArriveIntact) {
  Job job(small_job(3));
  Message seen;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 2) {
      co_await p.send(1, 9, 128);
    } else if (p.rank() == 1) {
      seen = co_await p.recv(kAnySource, kAnyTag);
    }
    co_return;
  });
  EXPECT_EQ(seen.src, 2);
  EXPECT_EQ(seen.tag, 9);
  EXPECT_EQ(seen.bytes, 128u);
}

TEST(P2P, NonOvertakingSameSourceSameTag) {
  Job job(small_job(2));
  std::vector<double> order;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      for (int i = 0; i < 20; ++i) {
        std::vector<double> payload(1, static_cast<double>(i));
        co_await p.send(1, 3, 8, std::move(payload));
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        Message m = co_await p.recv(0, 3);
        order.push_back(m.data[0]);
      }
    }
  });
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(P2P, TagSelectivity) {
  Job job(small_job(2));
  std::vector<double> got;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      std::vector<double> one(1, 1.0), two(1, 2.0);
      co_await p.send(1, 10, 8, std::move(one));
      co_await p.send(1, 20, 8, std::move(two));
    } else {
      Message m20 = co_await p.recv(0, 20);  // posted for tag 20 first
      Message m10 = co_await p.recv(0, 10);
      got = {m20.data[0], m10.data[0]};
    }
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0], 2.0);
  EXPECT_DOUBLE_EQ(got[1], 1.0);
}

TEST(P2P, WildcardSourceMatchesArrivalOrder) {
  Job job(small_job(3));
  std::vector<Rank> sources;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      Message a = co_await p.recv(kAnySource, 7);
      Message b = co_await p.recv(kAnySource, 7);
      sources = {a.src, b.src};
    } else {
      // rank 2 delays so rank 1's message arrives first
      if (p.rank() == 2) co_await p.compute(100 * units::us);
      co_await p.send(0, 7, 8);
    }
  });
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], 1);
  EXPECT_EQ(sources[1], 2);
}

TEST(P2P, TracedEventsRecorded) {
  Job job(small_job(2));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      co_await p.send(1, 5, 64);
    } else {
      co_await p.recv(0, 5);
    }
  });
  Trace t = job.take_trace();
  ASSERT_EQ(t.events(0).size(), 1u);
  ASSERT_EQ(t.events(1).size(), 1u);
  EXPECT_EQ(t.events(0)[0].type, EventType::Send);
  EXPECT_EQ(t.events(1)[0].type, EventType::Recv);
  EXPECT_EQ(t.events(0)[0].msg_id, t.events(1)[0].msg_id);
}

TEST(P2P, TracingOffRecordsNothing) {
  Job job(small_job(2));
  job.run([&](Proc& p) -> Coro<void> {
    p.set_tracing(false);
    if (p.rank() == 0) {
      co_await p.send(1, 5, 64);
    } else {
      co_await p.recv(0, 5);
    }
  });
  Trace t = job.take_trace();
  EXPECT_EQ(t.total_events(), 0u);
}

TEST(P2P, GroundTruthNeverViolatesClockCondition) {
  // The simulation itself must be causal: with *perfect* clocks the trace
  // can never violate Eq. 1.
  JobConfig cfg = small_job(4);
  Job job(std::move(cfg));
  job.run([&](Proc& p) -> Coro<void> {
    for (int i = 0; i < 50; ++i) {
      const Rank to = (p.rank() + 1) % p.nranks();
      const Rank from = (p.rank() + p.nranks() - 1) % p.nranks();
      co_await p.send(to, 1, 256);
      co_await p.recv(from, 1);
    }
  });
  Trace t = job.take_trace();
  for (const auto& m : t.match_messages()) {
    const Duration l_min = t.min_latency(m.send.proc, m.recv.proc);
    EXPECT_GE(t.at(m.recv).true_ts, t.at(m.send).true_ts + l_min - 1e-12);
    EXPECT_GE(t.at(m.recv).local_ts, t.at(m.send).local_ts + l_min - 1e-9);
  }
}

TEST(P2P, DeadlockIsReported) {
  Job job(small_job(2));
  EXPECT_THROW(job.run([&](Proc& p) -> Coro<void> {
    co_await p.recv((p.rank() + 1) % 2, 1);  // both wait, nobody sends
  }),
               std::runtime_error);
}

TEST(P2P, SelfSendRejected) {
  Job job(small_job(2));
  EXPECT_THROW(job.run([&](Proc& p) -> Coro<void> {
    co_await p.send(p.rank(), 1, 8);
  }),
               std::invalid_argument);
}

TEST(P2P, UserTagRangeEnforced) {
  Job job(small_job(2));
  EXPECT_THROW(job.run([&](Proc& p) -> Coro<void> {
    co_await p.send((p.rank() + 1) % 2, kInternalTagBase + 1, 8);
  }),
               std::invalid_argument);
}

TEST(P2P, DeterministicAcrossRuns) {
  auto run_once = [] {
    Job job(small_job(4, timer_specs::intel_tsc()));
    job.run([&](Proc& p) -> Coro<void> {
      for (int i = 0; i < 20; ++i) {
        const Rank to = (p.rank() + 1) % p.nranks();
        const Rank from = (p.rank() + p.nranks() - 1) % p.nranks();
        co_await p.send(to, 1, 64);
        co_await p.recv(from, 1);
        co_await p.compute(p.rng().uniform(1e-6, 5e-6));
      }
    });
    return job.take_trace();
  };
  Trace a = run_once();
  Trace b = run_once();
  ASSERT_EQ(a.total_events(), b.total_events());
  for (Rank r = 0; r < a.ranks(); ++r) {
    for (std::size_t i = 0; i < a.events(r).size(); ++i) {
      EXPECT_DOUBLE_EQ(a.events(r)[i].local_ts, b.events(r)[i].local_ts);
      EXPECT_DOUBLE_EQ(a.events(r)[i].true_ts, b.events(r)[i].true_ts);
    }
  }
}

TEST(P2P, PlacementRejectsSharedCore) {
  JobConfig cfg;
  cfg.placement = Placement({{0, 0, 0}, {0, 0, 0}});
  EXPECT_THROW(Job job(std::move(cfg)), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
