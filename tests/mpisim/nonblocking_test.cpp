#include <gtest/gtest.h>

#include "mpisim/job.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

JobConfig small_job(int ranks) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  cfg.seed = 42;
  return cfg;
}

TEST(Nonblocking, IsendWaitCompletesLocally) {
  Job job(small_job(2));
  Time waited_at = -1.0, started_at = -1.0;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      started_at = p.now();
      Request r = p.isend(1, 1, 64);
      (void)co_await p.wait(std::move(r));
      waited_at = p.now();
    } else {
      co_await p.recv(0, 1);
    }
  });
  // The send request completes after the local overhead, far below the
  // network latency.
  EXPECT_GT(waited_at, started_at);
  EXPECT_LT(waited_at - started_at, 1 * units::us);
}

TEST(Nonblocking, IrecvBeforeArrival) {
  Job job(small_job(2));
  std::vector<double> got;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      Request r = p.irecv(1, 7);
      Message m = co_await p.wait(std::move(r));
      got = m.data;
    } else {
      co_await p.compute(50 * units::us);
      std::vector<double> payload(1, 9.5);
      co_await p.send(0, 7, 8, std::move(payload));
    }
  });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0], 9.5);
}

TEST(Nonblocking, IrecvAfterArrivalMatchesUnexpected) {
  Job job(small_job(2));
  Rank src = -1;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      co_await p.compute(100 * units::us);  // message already arrived
      Request r = p.irecv(kAnySource, kAnyTag);
      Message m = co_await p.wait(std::move(r));
      src = m.src;
    } else {
      co_await p.send(0, 3, 8);
    }
  });
  EXPECT_EQ(src, 1);
}

TEST(Nonblocking, WaitallHandlesMixedRequests) {
  Job job(small_job(3));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(p.irecv(1, 1));
      reqs.push_back(p.irecv(2, 1));
      reqs.push_back(p.isend(1, 2, 16));
      reqs.push_back(p.isend(2, 2, 16));
      co_await p.waitall(std::move(reqs));
    } else {
      Request r = p.irecv(0, 2);
      co_await p.send(0, 1, 16);
      (void)co_await p.wait(std::move(r));
    }
  });
  Trace t = job.take_trace();
  EXPECT_EQ(t.match_messages().size(), 4u);
}

TEST(Nonblocking, RecvEventRecordedAtWait) {
  Job job(small_job(2));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      Request r = p.irecv(1, 1);
      co_await p.compute(200 * units::us);  // delay the wait well past arrival
      (void)co_await p.wait(std::move(r));
    } else {
      co_await p.send(0, 1, 8);
    }
  });
  Trace t = job.take_trace();
  ASSERT_EQ(t.events(0).size(), 1u);
  const Event& recv = t.events(0)[0];
  EXPECT_EQ(recv.type, EventType::Recv);
  // Scalasca-like: the Recv is timestamped in the wait, after the compute.
  EXPECT_GE(recv.true_ts, 200 * units::us);
}

TEST(Nonblocking, MessageAccessorRequiresCompletion) {
  Job job(small_job(2));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      Request r = p.irecv(1, 1);
      EXPECT_FALSE(r.complete());
      EXPECT_THROW((void)r.message(), std::invalid_argument);
      Message m = co_await p.wait(std::move(r));
      EXPECT_EQ(m.src, 1);
    } else {
      co_await p.send(0, 1, 8);
    }
  });
}

TEST(Nonblocking, DroppedRequestDoesNotCrash) {
  // A posted irecv abandoned by the application: the mailbox keepalive must
  // hold the state until delivery.
  Job job(small_job(2));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      { Request r = p.irecv(1, 1); }  // dropped immediately
      co_await p.compute(100 * units::us);
    } else {
      co_await p.send(0, 1, 8);
    }
  });
  SUCCEED();
}

TEST(Nonblocking, WaitOnEmptyRequestRejected) {
  Job job(small_job(2));
  EXPECT_THROW(job.run([&](Proc& p) -> Coro<void> {
    Request r;
    (void)co_await p.wait(std::move(r));
  }),
               std::invalid_argument);
}

TEST(Nonblocking, PmpiRegionsWrapNonblockingCalls) {
  JobConfig cfg = small_job(2);
  cfg.record_mpi_regions = true;
  Job job(std::move(cfg));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      Request r = p.irecv(1, 1);
      (void)co_await p.wait(std::move(r));
    } else {
      Request s = p.isend(0, 1, 8);
      (void)co_await p.wait(std::move(s));
    }
  });
  Trace t = job.take_trace();
  // rank0: Enter(Irecv) Exit + Enter(Wait) Recv Exit = 5 events.
  ASSERT_EQ(t.events(0).size(), 5u);
  EXPECT_EQ(t.events(0)[0].type, EventType::Enter);
  EXPECT_EQ(t.region_name(t.events(0)[0].region), "MPI_Irecv");
  EXPECT_EQ(t.events(0)[3].type, EventType::Recv);
  // rank1: Enter(Isend) Send Exit + Enter(Wait) Exit = 5 events.
  ASSERT_EQ(t.events(1).size(), 5u);
  EXPECT_EQ(t.region_name(t.events(1)[0].region), "MPI_Isend");
  EXPECT_EQ(t.events(1)[1].type, EventType::Send);
}

TEST(Nonblocking, HaloPatternDeadlockFree) {
  // All ranks post receives then sends: the classic pattern that deadlocks
  // with blocking recv-first ordering.
  Job job(small_job(6));
  job.run([&](Proc& p) -> Coro<void> {
    const int n = p.nranks();
    for (int it = 0; it < 20; ++it) {
      std::vector<Request> reqs;
      reqs.push_back(p.irecv((p.rank() + 1) % n, 1));
      reqs.push_back(p.irecv((p.rank() + n - 1) % n, 1));
      reqs.push_back(p.isend((p.rank() + 1) % n, 1, 128));
      reqs.push_back(p.isend((p.rank() + n - 1) % n, 1, 128));
      co_await p.waitall(std::move(reqs));
    }
  });
  Trace t = job.take_trace();
  EXPECT_EQ(t.match_messages().size(), 6u * 20u * 2u);
}

}  // namespace
}  // namespace chronosync
