// PMPI region-wrapping (record_mpi_regions): event structure of the traced
// MPI calls matches what interposition wrappers produce.
#include <gtest/gtest.h>

#include "mpisim/job.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

JobConfig pmpi_job(int ranks) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  cfg.record_mpi_regions = true;
  cfg.seed = 42;
  return cfg;
}

std::vector<std::string> event_shape(const Trace& t, Rank r) {
  std::vector<std::string> out;
  for (const Event& e : t.events(r)) {
    if (e.type == EventType::Enter) {
      out.push_back("E:" + t.region_name(e.region));
    } else if (e.type == EventType::Exit) {
      out.push_back("X:" + t.region_name(e.region));
    } else {
      out.push_back(to_string(e.type));
    }
  }
  return out;
}

TEST(PmpiRegions, BlockingSendRecvShape) {
  Job job(pmpi_job(2));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      co_await p.send(1, 1, 64);
    } else {
      co_await p.recv(0, 1);
    }
  });
  Trace t = job.take_trace();
  EXPECT_EQ(event_shape(t, 0),
            (std::vector<std::string>{"E:MPI_Send", "SEND", "X:MPI_Send"}));
  EXPECT_EQ(event_shape(t, 1),
            (std::vector<std::string>{"E:MPI_Recv", "RECV", "X:MPI_Recv"}));
}

TEST(PmpiRegions, RecvEnterTimestampedAtCallNotMatch) {
  Job job(pmpi_job(2));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      co_await p.compute(500 * units::us);
      co_await p.send(1, 1, 64);
    } else {
      co_await p.recv(0, 1);  // blocks ~500 us
    }
  });
  Trace t = job.take_trace();
  const auto& recv_events = t.events(1);
  ASSERT_EQ(recv_events.size(), 3u);
  // Enter at ~0; Recv and Exit after the sender got around to it.
  EXPECT_LT(recv_events[0].true_ts, 10 * units::us);
  EXPECT_GT(recv_events[1].true_ts, 490 * units::us);
  // The blocking time is visible as the Enter->Recv gap, which is exactly
  // what wait-state analyses (Scalasca's "Late Sender") quantify.
  EXPECT_GT(recv_events[1].true_ts - recv_events[0].true_ts, 400 * units::us);
}

TEST(PmpiRegions, CollectiveShape) {
  Job job(pmpi_job(4));
  job.run([&](Proc& p) -> Coro<void> { co_await p.allreduce(8); });
  Trace t = job.take_trace();
  for (Rank r = 0; r < 4; ++r) {
    EXPECT_EQ(event_shape(t, r),
              (std::vector<std::string>{"E:MPI_Allreduce", "COLL_BEGIN", "COLL_END",
                                        "X:MPI_Allreduce"}))
        << r;
  }
}

TEST(PmpiRegions, RegionsOffByDefault) {
  JobConfig cfg = pmpi_job(2);
  cfg.record_mpi_regions = false;
  Job job(std::move(cfg));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      co_await p.send(1, 1, 64);
    } else {
      co_await p.recv(0, 1);
    }
  });
  Trace t = job.take_trace();
  EXPECT_EQ(event_shape(t, 0), (std::vector<std::string>{"SEND"}));
}

TEST(PmpiRegions, UntracedInternalTrafficStaysInvisible) {
  Job job(pmpi_job(4));
  job.run([&](Proc& p) -> Coro<void> {
    p.set_tracing(false);
    co_await p.barrier();
    p.set_tracing(true);
    co_await p.barrier();
  });
  Trace t = job.take_trace();
  // Only the traced barrier appears: 4 events per rank.
  for (Rank r = 0; r < 4; ++r) EXPECT_EQ(t.events(r).size(), 4u);
  EXPECT_EQ(t.collect_collectives().size(), 1u);
}

TEST(PmpiRegions, CensusMatchesScalascaShape) {
  // With wrapping on, message-transfer events are exactly 1/3 of the MPI
  // events (Enter + transfer + Exit per p2p call).
  Job job(pmpi_job(2));
  job.run([&](Proc& p) -> Coro<void> {
    for (int i = 0; i < 25; ++i) {
      if (p.rank() == 0) {
        co_await p.send(1, 1, 64);
        co_await p.recv(1, 2);
      } else {
        co_await p.recv(0, 1);
        co_await p.send(0, 2, 64);
      }
    }
  });
  Trace t = job.take_trace();
  std::size_t transfer = 0;
  for (Rank r = 0; r < 2; ++r) {
    for (const Event& e : t.events(r)) {
      if (e.type == EventType::Send || e.type == EventType::Recv) ++transfer;
    }
  }
  EXPECT_EQ(t.total_events(), 3 * transfer);
}

}  // namespace
}  // namespace chronosync
