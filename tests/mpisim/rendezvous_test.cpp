#include <gtest/gtest.h>

#include "mpisim/job.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

JobConfig job_with_threshold(std::uint32_t threshold, int ranks = 2) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  cfg.rendezvous_threshold = threshold;
  cfg.seed = 42;
  return cfg;
}

TEST(Rendezvous, SmallMessagesStayEager) {
  Job job(job_with_threshold(64 * 1024));
  Time send_done = -1.0;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      const Time t0 = p.now();
      co_await p.send(1, 1, 1024);  // below threshold
      send_done = p.now() - t0;
    } else {
      co_await p.compute(500 * units::us);  // receiver arrives late
      co_await p.recv(0, 1);
    }
  });
  // Eager: the sender returns after the local overhead, long before the
  // receiver shows up.
  EXPECT_LT(send_done, 1 * units::us);
}

TEST(Rendezvous, LargeSendBlocksUntilReceiverArrives) {
  Job job(job_with_threshold(64 * 1024));
  Time send_done = -1.0;
  const Duration receiver_delay = 500 * units::us;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      const Time t0 = p.now();
      co_await p.send(1, 1, 1024 * 1024);  // 1 MiB: rendezvous
      send_done = p.now() - t0;
    } else {
      co_await p.compute(receiver_delay);
      co_await p.recv(0, 1);
    }
  });
  // Synchronous semantics: the sender cannot complete before the receiver
  // posted its receive.
  EXPECT_GT(send_done, receiver_delay * 0.9);
}

TEST(Rendezvous, ReceiverFirstCompletesPromptly) {
  Job job(job_with_threshold(64 * 1024));
  Time send_done = -1.0;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      co_await p.compute(200 * units::us);  // receiver is already waiting
      const Time t0 = p.now();
      co_await p.send(1, 1, 1024 * 1024);
      send_done = p.now() - t0;
    } else {
      co_await p.recv(0, 1);
    }
  });
  // One message flight + the CTS return path; far below a millisecond.
  EXPECT_GT(send_done, 4.29 * units::us);
  EXPECT_LT(send_done, 5 * units::ms);
}

TEST(Rendezvous, ZeroThresholdDisables) {
  Job job(job_with_threshold(0));
  Time send_done = -1.0;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      const Time t0 = p.now();
      co_await p.send(1, 1, 8 * 1024 * 1024);
      send_done = p.now() - t0;
    } else {
      co_await p.compute(1 * units::ms);
      co_await p.recv(0, 1);
    }
  });
  EXPECT_LT(send_done, 1 * units::us);  // all eager
}

TEST(Rendezvous, NonblockingLargeSendCompletesAtMatch) {
  Job job(job_with_threshold(64 * 1024));
  Time wait_done = -1.0;
  const Duration receiver_delay = 300 * units::us;
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      Request r = p.isend(1, 1, 256 * 1024);
      const Time t0 = p.now();
      (void)co_await p.wait(std::move(r));
      wait_done = p.now() - t0;
    } else {
      co_await p.compute(receiver_delay);
      co_await p.recv(0, 1);
    }
  });
  EXPECT_GT(wait_done, receiver_delay * 0.9);
}

TEST(Rendezvous, DroppedLargeIsendRequestIsSafe) {
  Job job(job_with_threshold(64 * 1024));
  job.run([&](Proc& p) -> Coro<void> {
    if (p.rank() == 0) {
      { Request r = p.isend(1, 1, 256 * 1024); }  // dropped before completion
      co_await p.compute(1 * units::ms);
    } else {
      co_await p.recv(0, 1);
    }
  });
  SUCCEED();
}

TEST(Rendezvous, TraceStillCausallyConsistent) {
  Job job(job_with_threshold(32 * 1024, 4));
  job.run([&](Proc& p) -> Coro<void> {
    for (int i = 0; i < 10; ++i) {
      const Rank to = (p.rank() + 1) % p.nranks();
      const Rank from = (p.rank() + p.nranks() - 1) % p.nranks();
      Request r = p.irecv(from, 1);
      co_await p.send(to, 1, 64 * 1024);  // rendezvous both ways
      (void)co_await p.wait(std::move(r));
    }
  });
  Trace t = job.take_trace();
  EXPECT_EQ(t.match_messages().size(), 40u);
  for (const auto& m : t.match_messages()) {
    EXPECT_GE(t.at(m.recv).true_ts,
              t.at(m.send).true_ts + t.min_latency(m.send.proc, m.recv.proc) - 1e-12);
  }
}

}  // namespace
}  // namespace chronosync
