#include <gtest/gtest.h>

#include <map>

#include "mpisim/job.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

JobConfig small_job(int ranks) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  cfg.seed = 42;
  return cfg;
}

/// Runs one collective on `ranks` ranks and returns the trace.
template <typename Op>
Trace run_collective(int ranks, Op op) {
  Job job(small_job(ranks));
  job.run([&](Proc& p) -> Coro<void> { co_await op(p); });
  return job.take_trace();
}

void expect_one_instance(const Trace& t, CollectiveKind kind, int ranks) {
  auto insts = t.collect_collectives();
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0].kind, kind);
  EXPECT_EQ(insts[0].begins.size(), static_cast<std::size_t>(ranks));
  EXPECT_EQ(insts[0].ends.size(), static_cast<std::size_t>(ranks));
}

TEST(Collectives, BarrierCompletesAndIsTraced) {
  Trace t = run_collective(5, [](Proc& p) { return p.barrier(); });
  expect_one_instance(t, CollectiveKind::Barrier, 5);
}

TEST(Collectives, BarrierOverlapsInTruth) {
  // No rank may leave the barrier before the last one entered: ground truth
  // of the simulated dissemination barrier must satisfy N-to-N semantics.
  Trace t = run_collective(7, [](Proc& p) { return p.barrier(); });
  auto insts = t.collect_collectives();
  Time max_begin = -kTimeInfinity, min_end = kTimeInfinity;
  for (const auto& b : insts[0].begins) max_begin = std::max(max_begin, t.at(b).true_ts);
  for (const auto& e : insts[0].ends) min_end = std::min(min_end, t.at(e).true_ts);
  EXPECT_GE(min_end, max_begin);
}

TEST(Collectives, BcastRootFirst) {
  Trace t = run_collective(6, [](Proc& p) { return p.bcast(2, 1024); });
  expect_one_instance(t, CollectiveKind::Bcast, 6);
  auto insts = t.collect_collectives();
  EXPECT_EQ(insts[0].root, 2);
  // Every non-root must finish after the root began (1-to-N semantics).
  Time root_begin = 0.0;
  for (const auto& b : insts[0].begins) {
    if (b.proc == 2) root_begin = t.at(b).true_ts;
  }
  for (const auto& e : insts[0].ends) {
    if (e.proc != 2) {
      EXPECT_GT(t.at(e).true_ts, root_begin);
    }
  }
}

TEST(Collectives, ReduceRootLast) {
  Trace t = run_collective(6, [](Proc& p) { return p.reduce(0, 512); });
  auto insts = t.collect_collectives();
  // Root's end must come after every begin (N-to-1 semantics).
  Time root_end = 0.0;
  for (const auto& e : insts[0].ends) {
    if (e.proc == 0) root_end = t.at(e).true_ts;
  }
  for (const auto& b : insts[0].begins) {
    EXPECT_LT(t.at(b).true_ts, root_end);
  }
}

TEST(Collectives, AllreducePowerOfTwo) {
  Trace t = run_collective(8, [](Proc& p) { return p.allreduce(8); });
  expect_one_instance(t, CollectiveKind::Allreduce, 8);
}

TEST(Collectives, AllreduceNonPowerOfTwo) {
  Trace t = run_collective(6, [](Proc& p) { return p.allreduce(8); });
  expect_one_instance(t, CollectiveKind::Allreduce, 6);
}

TEST(Collectives, AllreduceIsNToN) {
  Trace t = run_collective(8, [](Proc& p) { return p.allreduce(8); });
  auto insts = t.collect_collectives();
  Time max_begin = -kTimeInfinity, min_end = kTimeInfinity;
  for (const auto& b : insts[0].begins) max_begin = std::max(max_begin, t.at(b).true_ts);
  for (const auto& e : insts[0].ends) min_end = std::min(min_end, t.at(e).true_ts);
  EXPECT_GE(min_end, max_begin);
}

TEST(Collectives, GatherScatterAllgatherAlltoall) {
  Trace t1 = run_collective(5, [](Proc& p) { return p.gather(1, 256); });
  expect_one_instance(t1, CollectiveKind::Gather, 5);
  Trace t2 = run_collective(5, [](Proc& p) { return p.scatter(3, 256); });
  expect_one_instance(t2, CollectiveKind::Scatter, 5);
  Trace t3 = run_collective(5, [](Proc& p) { return p.allgather(256); });
  expect_one_instance(t3, CollectiveKind::Allgather, 5);
  Trace t4 = run_collective(5, [](Proc& p) { return p.alltoall(64); });
  expect_one_instance(t4, CollectiveKind::Alltoall, 5);
}

TEST(Collectives, SequenceOfCollectivesGetsDistinctIds) {
  Job job(small_job(4));
  job.run([&](Proc& p) -> Coro<void> {
    co_await p.barrier();
    co_await p.allreduce(8);
    co_await p.bcast(0, 128);
  });
  Trace t = job.take_trace();
  auto insts = t.collect_collectives();
  ASSERT_EQ(insts.size(), 3u);
  std::map<std::int64_t, CollectiveKind> kinds;
  for (const auto& i : insts) kinds[i.coll_id] = i.kind;
  EXPECT_EQ(kinds.size(), 3u);
}

TEST(Collectives, MixedWithP2PTraffic) {
  Job job(small_job(4));
  job.run([&](Proc& p) -> Coro<void> {
    for (int i = 0; i < 10; ++i) {
      co_await p.send((p.rank() + 1) % 4, 1, 64);
      co_await p.recv((p.rank() + 3) % 4, 1);
      co_await p.allreduce(8);
    }
  });
  Trace t = job.take_trace();
  EXPECT_EQ(t.match_messages().size(), 40u);
  EXPECT_EQ(t.collect_collectives().size(), 10u);
}

TEST(Collectives, InterNodeAllreduceLatencyMatchesTableII) {
  // Table II: 4-node allreduce ~12.86 us on the Xeon cluster.  Recursive
  // doubling gives 2 rounds of ~4.3 us plus overheads; the model should land
  // in the same regime (5..25 us).
  Job job(small_job(4));
  Time start = 0.0, stop = 0.0;
  job.run([&](Proc& p) -> Coro<void> {
    co_await p.barrier();
    if (p.rank() == 0) start = p.now();
    co_await p.allreduce(8);
    if (p.rank() == 0) stop = p.now();
  });
  const Duration lat = stop - start;
  EXPECT_GT(lat, 5 * units::us);
  EXPECT_LT(lat, 25 * units::us);
}

TEST(Collectives, SingleRankCollectivesAreLocal) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 1);
  Job job(std::move(cfg));
  job.run([&](Proc& p) -> Coro<void> {
    co_await p.barrier();
    co_await p.allreduce(8);
  });
  Trace t = job.take_trace();
  EXPECT_EQ(t.collect_collectives().size(), 2u);
}

TEST(Collectives, RootRangeChecked) {
  Job job(small_job(2));
  EXPECT_THROW(job.run([&](Proc& p) -> Coro<void> { co_await p.bcast(5, 8); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
