#include "mpisim/comm.hpp"

#include <gtest/gtest.h>

#include <map>

#include "mpisim/job.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

JobConfig small_job(int ranks) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  cfg.seed = 42;
  return cfg;
}

TEST(Communicator, WorldCoversAllRanks) {
  const Communicator w = Communicator::world(5);
  EXPECT_EQ(w.id(), 0);
  EXPECT_EQ(w.size(), 5);
  for (Rank r = 0; r < 5; ++r) {
    EXPECT_EQ(w.world_rank(r), r);
    EXPECT_EQ(w.rank_of(r), r);
    EXPECT_TRUE(w.contains(r));
  }
  EXPECT_EQ(w.rank_of(5), -1);
}

TEST(Communicator, ExplicitMembers) {
  const Communicator c(3, {4, 1, 7});
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.world_rank(0), 4);
  EXPECT_EQ(c.rank_of(7), 2);
  EXPECT_FALSE(c.contains(2));
  EXPECT_THROW(c.world_rank(3), std::invalid_argument);
}

TEST(Communicator, ValidationRejectsEmpty) {
  EXPECT_THROW(Communicator(1, {}), std::invalid_argument);
  EXPECT_THROW(Communicator::world(0), std::invalid_argument);
}

TEST(CommSplit, PartitionsByColorOrderedByKey) {
  Job job(small_job(6));
  std::vector<Communicator> results(6, Communicator::world(1));
  job.run([&](Proc& p) -> Coro<void> {
    // Even ranks color 0, odd ranks color 1; key reverses rank order.
    const int color = p.rank() % 2;
    const int key = -p.rank();
    results[static_cast<std::size_t>(p.rank())] =
        co_await p.split(p.comm_world(), color, key);
  });
  // Even group reversed by key: {4, 2, 0}.
  EXPECT_EQ(results[0].members(), (std::vector<Rank>{4, 2, 0}));
  EXPECT_EQ(results[1].members(), (std::vector<Rank>{5, 3, 1}));
  // All members of one color share the same id; colors differ.
  EXPECT_EQ(results[0].id(), results[2].id());
  EXPECT_EQ(results[1].id(), results[3].id());
  EXPECT_NE(results[0].id(), results[1].id());
  EXPECT_NE(results[0].id(), 0);
}

TEST(CommSplit, SubCollectivesRunOnGroups) {
  Job job(small_job(8));
  job.run([&](Proc& p) -> Coro<void> {
    const Communicator row = co_await p.split(p.comm_world(), p.rank() / 4, p.rank());
    co_await p.barrier(row);
    co_await p.allreduce(row, 8);
    co_await p.bcast(row, 0, 64);
  });
  Trace t = job.take_trace();
  const auto insts = t.collect_collectives();
  // 2 groups x 3 collectives.
  ASSERT_EQ(insts.size(), 6u);
  std::map<CollectiveKind, int> counts;
  for (const auto& inst : insts) {
    EXPECT_EQ(inst.begins.size(), 4u);
    ++counts[inst.kind];
  }
  EXPECT_EQ(counts[CollectiveKind::Barrier], 2);
  EXPECT_EQ(counts[CollectiveKind::Allreduce], 2);
  EXPECT_EQ(counts[CollectiveKind::Bcast], 2);
}

TEST(CommSplit, SubCollectiveSemanticsHold) {
  Job job(small_job(8));
  job.run([&](Proc& p) -> Coro<void> {
    const Communicator half = co_await p.split(p.comm_world(), p.rank() < 4 ? 0 : 1, p.rank());
    co_await p.compute(p.rng().uniform(0.0, 20e-6));
    co_await p.barrier(half);
  });
  Trace t = job.take_trace();
  for (const auto& inst : t.collect_collectives()) {
    Time max_begin = -kTimeInfinity, min_end = kTimeInfinity;
    for (const auto& b : inst.begins) max_begin = std::max(max_begin, t.at(b).true_ts);
    for (const auto& e : inst.ends) min_end = std::min(min_end, t.at(e).true_ts);
    EXPECT_GE(min_end, max_begin);
  }
}

TEST(CommSplit, ConcurrentRowAndColumnComms) {
  // 4x2 grid: row comms and column comms used back to back.
  Job job(small_job(8));
  job.run([&](Proc& p) -> Coro<void> {
    const int row = p.rank() / 4;
    const int col = p.rank() % 4;
    const Communicator row_comm = co_await p.split(p.comm_world(), row, col);
    const Communicator col_comm = co_await p.split(p.comm_world(), col, row);
    for (int i = 0; i < 5; ++i) {
      co_await p.allreduce(row_comm, 8);
      co_await p.allreduce(col_comm, 8);
    }
  });
  Trace t = job.take_trace();
  // 2 rows x 5 + 4 cols x 5 = 30 instances, each complete.
  const auto insts = t.collect_collectives();
  EXPECT_EQ(insts.size(), 30u);
  for (const auto& inst : insts) {
    EXPECT_TRUE(inst.begins.size() == 4u || inst.begins.size() == 2u);
    EXPECT_EQ(inst.begins.size(), inst.ends.size());
  }
}

TEST(CommSplit, RootedSubCollectiveRecordsWorldRoot) {
  Job job(small_job(4));
  job.run([&](Proc& p) -> Coro<void> {
    const Communicator high = co_await p.split(p.comm_world(), p.rank() / 2, p.rank());
    co_await p.bcast(high, 1, 32);  // root = communicator rank 1
  });
  Trace t = job.take_trace();
  for (const auto& inst : t.collect_collectives()) {
    // Group {0,1} -> world root 1; group {2,3} -> world root 3.
    EXPECT_TRUE(inst.root == 1 || inst.root == 3);
  }
}

TEST(CommSplit, NonMemberCollectiveRejected) {
  Job job(small_job(4));
  EXPECT_THROW(job.run([&](Proc& p) -> Coro<void> {
    const Communicator sub = co_await p.split(p.comm_world(), p.rank() % 2, 0);
    // Every rank tries a collective on rank 0's communicator object; members
    // of the other color are not members.
    if (p.rank() == 1) {
      const Communicator wrong(sub.id() + 100, {0, 2});
      co_await p.barrier(wrong);
    }
  }),
               std::invalid_argument);
}

TEST(CommSplit, SplitOfSplit) {
  Job job(small_job(8));
  std::vector<int> sizes(8, 0);
  job.run([&](Proc& p) -> Coro<void> {
    const Communicator half = co_await p.split(p.comm_world(), p.rank() / 4, p.rank());
    const Communicator quarter = co_await p.split(half, half.rank_of(p.rank()) / 2, 0);
    sizes[static_cast<std::size_t>(p.rank())] = quarter.size();
    co_await p.barrier(quarter);
  });
  for (int s : sizes) EXPECT_EQ(s, 2);
}

}  // namespace
}  // namespace chronosync
