#include <gtest/gtest.h>

#include "common/statistics.hpp"
#include "mpisim/job.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Time run_compute(double noise_rate, Duration noise_scale, std::uint64_t seed) {
  JobConfig cfg;
  cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 1);
  cfg.os_noise_rate = noise_rate;
  cfg.os_noise_scale = noise_scale;
  cfg.seed = seed;
  Job job(std::move(cfg));
  job.run([&](Proc& p) -> Coro<void> { co_await p.compute(1.0); });
  return job.engine().now();
}

TEST(OsNoise, OffByDefaultIsExact) {
  EXPECT_DOUBLE_EQ(run_compute(0.0, 50e-6, 1), 1.0);
}

TEST(OsNoise, StretchesComputeByExpectedAmount) {
  // 100 preemptions/s of mean 1 ms each stretch 1 s of compute by ~10%.
  RunningStats stretch;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    stretch.add(run_compute(100.0, 1e-3, seed) - 1.0);
  }
  EXPECT_NEAR(stretch.mean(), 0.1, 0.03);
  EXPECT_GT(stretch.min(), 0.0);
}

TEST(OsNoise, DeterministicPerSeed) {
  EXPECT_DOUBLE_EQ(run_compute(100.0, 1e-3, 5), run_compute(100.0, 1e-3, 5));
  EXPECT_NE(run_compute(100.0, 1e-3, 5), run_compute(100.0, 1e-3, 6));
}

TEST(OsNoise, DoesNotPerturbWorkloadRngStream) {
  auto first_draw = [](double rate) {
    JobConfig cfg;
    cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 1);
    cfg.os_noise_rate = rate;
    cfg.seed = 9;
    Job job(std::move(cfg));
    double draw = 0.0;
    job.run([&](Proc& p) -> Coro<void> {
      co_await p.compute(1.0);
      draw = p.rng().uniform();
    });
    return draw;
  };
  EXPECT_DOUBLE_EQ(first_draw(0.0), first_draw(500.0));
}

TEST(OsNoise, SkewsCollectiveArrival) {
  // With OS noise, identical compute phases finish at different times, so a
  // barrier's begin events spread out (the jitter mechanism of Sec. III(c)).
  auto barrier_spread = [](double rate) {
    JobConfig cfg;
    cfg.placement = pinning::inter_node(clusters::xeon_rwth(), 8);
    cfg.os_noise_rate = rate;
    cfg.os_noise_scale = 100e-6;
    cfg.seed = 3;
    Job job(std::move(cfg));
    job.run([&](Proc& p) -> Coro<void> {
      co_await p.compute(0.5);
      co_await p.barrier();
    });
    Trace t = job.take_trace();
    Time lo = kTimeInfinity, hi = -kTimeInfinity;
    for (Rank r = 0; r < 8; ++r) {
      for (const Event& e : t.events(r)) {
        if (e.type != EventType::CollBegin) continue;
        lo = std::min(lo, e.true_ts);
        hi = std::max(hi, e.true_ts);
      }
    }
    return hi - lo;
  };
  EXPECT_GT(barrier_spread(200.0), barrier_spread(0.0));
  EXPECT_GT(barrier_spread(200.0), 100e-6);
}

}  // namespace
}  // namespace chronosync
