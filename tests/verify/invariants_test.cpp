// InvariantChecker: every violation kind must be detected, counted exactly,
// and attributed to the right events; a clean trace must audit clean.
#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topology/cluster.hpp"
#include "trace/logical_messages.hpp"

namespace chronosync {
namespace {

Trace make_trace() {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2),
          {0.47e-6, 0.86e-6, 4.29e-6}, "test");
  Event s;
  s.type = EventType::Send;
  s.peer = 1;
  s.msg_id = 0;
  s.local_ts = s.true_ts = 1.0;
  t.events(0).push_back(s);

  Event r = s;
  r.type = EventType::Recv;
  r.peer = 0;
  r.local_ts = r.true_ts = 1.5;
  t.events(1).push_back(r);

  Event s2;
  s2.type = EventType::Send;
  s2.peer = 0;
  s2.msg_id = 1;
  s2.local_ts = s2.true_ts = 1.8;
  t.events(1).push_back(s2);

  Event r2 = s2;
  r2.type = EventType::Recv;
  r2.peer = 1;
  r2.local_ts = r2.true_ts = 2.0;
  t.events(0).push_back(r2);
  return t;
}

struct Fixture {
  Trace trace;
  std::vector<MessageRecord> msgs;
  std::vector<LogicalMessage> logical;
  ReplaySchedule schedule;

  Fixture()
      : trace(make_trace()),
        msgs(trace.match_messages()),
        logical(derive_logical_messages(trace)),
        schedule(trace, msgs, logical) {}
};

TEST(InvariantChecker, CleanTraceAuditsClean) {
  Fixture fx;
  const verify::InvariantChecker checker(fx.trace, fx.schedule);
  const auto report = checker.check(TimestampArray::from_local(fx.trace));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.events_checked, 4u);
  EXPECT_EQ(report.edges_checked, 2u);
}

TEST(InvariantChecker, DetectsNonFiniteTimestamp) {
  Fixture fx;
  auto ts = TimestampArray::from_local(fx.trace);
  ts.of_rank(1)[0] = std::nan("");
  const verify::InvariantChecker checker(fx.trace, fx.schedule);
  const auto report = checker.check(ts);
  EXPECT_EQ(report.count(verify::InvariantKind::NonFiniteTimestamp), 1u);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations.front().rank, 1);
}

TEST(InvariantChecker, DetectsLocalOrderInversion) {
  Fixture fx;
  auto ts = TimestampArray::from_local(fx.trace);
  ts.of_rank(1)[1] = 1.0;  // send now precedes the rank's earlier recv
  const verify::InvariantChecker checker(fx.trace, fx.schedule);
  const auto report = checker.check(ts);
  EXPECT_EQ(report.count(verify::InvariantKind::LocalOrderInversion), 1u);
  ASSERT_FALSE(report.violations.empty());
  const auto& v = report.violations.front();
  EXPECT_EQ(v.kind, verify::InvariantKind::LocalOrderInversion);
  EXPECT_EQ(v.rank, 1);
  EXPECT_TRUE(v.has_other);
  EXPECT_NEAR(v.slack, 0.5, 1e-12);
}

TEST(InvariantChecker, DetectsClockConditionViolation) {
  Fixture fx;
  auto ts = TimestampArray::from_local(fx.trace);
  ts.of_rank(0)[1] = 1.8;  // recv now coincides with its send
  const verify::InvariantChecker checker(fx.trace, fx.schedule);
  const auto report = checker.check(ts);
  EXPECT_EQ(report.count(verify::InvariantKind::ClockCondition), 1u);
  // Violation size is exactly the unmet minimum latency.
  EXPECT_NEAR(report.worst_slack(verify::InvariantKind::ClockCondition), 4.29e-6, 1e-12);
}

TEST(InvariantChecker, SlackToleratesSmallViolations) {
  Fixture fx;
  auto ts = TimestampArray::from_local(fx.trace);
  ts.of_rank(0)[1] = 1.8;
  verify::VerifyOptions opt;
  opt.clock_condition_slack = 1e-5;
  const verify::InvariantChecker checker(fx.trace, fx.schedule, opt);
  EXPECT_TRUE(checker.check(ts).ok());
}

TEST(InvariantChecker, CorrectionMustNotMoveEventsBackward) {
  Fixture fx;
  const auto input = TimestampArray::from_local(fx.trace);
  auto corrected = input;
  corrected.of_rank(0)[0] -= 1e-3;
  const verify::InvariantChecker checker(fx.trace, fx.schedule);
  const auto report = checker.check_correction(input, corrected);
  EXPECT_EQ(report.count(verify::InvariantKind::BackwardCorrection), 1u);
  EXPECT_NEAR(report.worst_slack(verify::InvariantKind::BackwardCorrection), 1e-3, 1e-12);
}

TEST(InvariantChecker, CorrectionMagnitudeIsBounded) {
  Fixture fx;
  const auto input = TimestampArray::from_local(fx.trace);
  auto corrected = input;
  corrected.of_rank(0)[1] += 1.0;
  verify::VerifyOptions opt;
  opt.max_correction = 1e-6;
  const verify::InvariantChecker checker(fx.trace, fx.schedule, opt);
  const auto report = checker.check_correction(input, corrected);
  EXPECT_EQ(report.count(verify::InvariantKind::CorrectionMagnitude), 1u);
  EXPECT_EQ(report.count(verify::InvariantKind::BackwardCorrection), 0u);
}

TEST(InvariantChecker, RecordedViolationsAreCappedCountsStayExact) {
  Fixture fx;
  auto ts = TimestampArray::from_local(fx.trace);
  for (Rank r = 0; r < fx.trace.ranks(); ++r) {
    for (auto& t : ts.of_rank(r)) t = std::nan("");
  }
  verify::VerifyOptions opt;
  opt.max_recorded = 2;
  const verify::InvariantChecker checker(fx.trace, fx.schedule, opt);
  const auto report = checker.check(ts);
  EXPECT_EQ(report.count(verify::InvariantKind::NonFiniteTimestamp), 4u);
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.total(), 4u);
}

TEST(InvariantChecker, RejectsMismatchedTraceAndSchedule) {
  Fixture fx;
  Trace other = make_trace();
  Event extra;
  extra.type = EventType::Enter;
  extra.local_ts = extra.true_ts = 3.0;
  other.events(0).push_back(extra);
  EXPECT_THROW(verify::InvariantChecker(other, fx.schedule), std::invalid_argument);
}

TEST(InvariantChecker, SummaryNamesEveryViolationKind) {
  Fixture fx;
  auto ts = TimestampArray::from_local(fx.trace);
  ts.of_rank(0)[1] = 1.8;
  const verify::InvariantChecker checker(fx.trace, fx.schedule);
  const std::string s = checker.check(ts).summary();
  EXPECT_NE(s.find("clock condition"), std::string::npos) << s;
}

}  // namespace
}  // namespace chronosync
