// The Kalman accuracy race as a verify-label gate: on the committed drift
// scenarios the model-based filter must beat (or, under constant drift,
// match) Eq. 3 linear interpolation against mpisim ground truth.  This
// duplicates the scenarios' own expect.accuracy blocks on purpose — the race
// stays enforced by `ctest -L verify` even if a scenario file is edited.
#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "verify/differential.hpp"

namespace chronosync::scenario {
namespace {

verify::MethodAccuracy find_accuracy(const ScenarioOutcome& out, const std::string& name) {
  const auto it = std::find_if(out.accuracy.begin(), out.accuracy.end(),
                               [&](const auto& a) { return a.name == name; });
  EXPECT_NE(it, out.accuracy.end()) << name << " missing from scenario accuracy record";
  return it == out.accuracy.end() ? verify::MethodAccuracy{} : *it;
}

ScenarioOutcome run_named(const std::string& stem) {
  const ScenarioSpec spec =
      load_scenario_file(std::string(CHRONOSYNC_SCENARIO_DIR) + "/" + stem + ".json");
  ScenarioRunOptions opts;
  opts.work_dir = testing::TempDir();
  return run_scenario(spec, opts);
}

TEST(KalmanRace, MatchesLinearOnConstantDrift) {
  // With wander disabled Eq. 3 is the exactly right model; the filter must
  // land within the probe-noise floor of it, not merely in the same decade.
  const ScenarioOutcome out = run_named("constant-drift");
  EXPECT_TRUE(out.ok()) << out.summary();
  const auto kalman = find_accuracy(out, "kalman-drift");
  const auto linear = find_accuracy(out, "linear-interpolation");
  EXPECT_TRUE(std::isfinite(kalman.rms_error));
  EXPECT_LE(kalman.rms_error, linear.rms_error + 2.0e-6);
}

TEST(KalmanRace, BeatsLinearOnRandomWalkWander) {
  const ScenarioOutcome out = run_named("random-walk-wander");
  EXPECT_TRUE(out.ok()) << out.summary();
  const auto kalman = find_accuracy(out, "kalman-drift");
  const auto linear = find_accuracy(out, "linear-interpolation");
  EXPECT_LT(kalman.rms_error, 0.95 * linear.rms_error);
}

TEST(KalmanRace, BeatsLinearOnObservableDvfsStorm) {
  // The *observable* storm: the cycle counter steps through DVFS levels while
  // the run executes, so the periodic probes see the excursions.  (The
  // injected-storm sibling scenario rewrites local_ts after the fact and is
  // invisible to every probe-based method by construction — see
  // EXPERIMENTS.md.)
  const ScenarioOutcome out = run_named("drift-storm-dvfs-observable");
  EXPECT_TRUE(out.ok()) << out.summary();
  const auto kalman = find_accuracy(out, "kalman-drift");
  const auto linear = find_accuracy(out, "linear-interpolation");
  EXPECT_LT(kalman.rms_error, 0.95 * linear.rms_error);
}

}  // namespace
}  // namespace chronosync::scenario
