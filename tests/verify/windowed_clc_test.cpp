#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "topology/cluster.hpp"
#include "verify/differential.hpp"
#include "workload/smg2000.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

// The windowed streaming CLC promises bit-identical output to the in-memory
// CLC whenever its divergence counters stay zero.  cross_check_windowed_clc
// asserts exactly that; here it runs over real workload traces (message +
// collective traffic, genuine drift-induced violations) and over several
// option points, so the sanitizer suite sweeps the whole streaming engine.

std::vector<std::string> check(const Trace& trace, StreamClcOptions opt) {
  std::vector<std::string> failures;
  const std::size_t n = verify::cross_check_windowed_clc(trace, testing::TempDir(), opt, failures);
  EXPECT_GT(n, 1u);
  return failures;
}

TEST(WindowedClc, SweepWorkloadMatchesInMemory) {
  SweepConfig cfg;
  cfg.rounds = 25;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = 17;
  const Trace trace = run_sweep(cfg, std::move(job)).trace;

  StreamClcOptions opt;
  opt.emit_batch = 24;  // small batches: exercise interim sweeps + finality rules
  opt.backward_window = 1e3;  // above every ramp: the run must be divergence-free
  for (const std::string& f : check(trace, opt)) ADD_FAILURE() << f;
}

TEST(WindowedClc, CollectiveHeavyWorkloadMatchesInMemory) {
  SmgConfig cfg;
  cfg.px = 4;
  cfg.py = 2;
  cfg.levels = 3;
  cfg.iterations = 2;
  cfg.setup_exchanges = 1;
  cfg.level_compute = 100 * units::us;
  cfg.pre_sleep = 0.5;
  cfg.post_sleep = 0.5;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 8);
  job.timer = timer_specs::intel_tsc();
  job.seed = 23;
  const Trace trace = run_smg(cfg, std::move(job)).trace;

  StreamClcOptions opt;
  opt.emit_batch = 16;
  opt.backward_window = 1e3;
  for (const std::string& f : check(trace, opt)) ADD_FAILURE() << f;
  StreamClcOptions no_ba;
  no_ba.clc.backward_amortization = false;
  no_ba.emit_batch = 16;
  for (const std::string& f : check(trace, no_ba)) ADD_FAILURE() << f;
}

}  // namespace
}  // namespace chronosync
