// Differential cross-checks: a healthy simulated run must come back clean,
// and a seeded divergence in a contracted-identical pair must be caught.
#include "verify/differential.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "ompsim/omp_bench.hpp"
#include "trace/logical_messages.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

AppRunResult small_fixture(std::uint64_t seed = 42) {
  SweepConfig cfg;
  cfg.rounds = 60;
  cfg.gap_mean = 3.0;  // long gaps: drift accumulates, Eq. 1 violations appear
  cfg.collective_every = 20;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = seed;
  return run_sweep(cfg, std::move(job));
}

TEST(Differential, RunAllMethodsIncludesClcContractPair) {
  const AppRunResult res = small_fixture();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto outputs = verify::run_all_methods(res.trace, res.offsets, msgs, schedule);

  bool serial = false, parallel = false;
  for (const auto& m : outputs) {
    if (m.name == "interpolation+clc-serial") serial = m.restores_clock_condition;
    if (m.name == "interpolation+clc-parallel") parallel = m.restores_clock_condition;
    ASSERT_EQ(m.ts.ranks(), res.trace.ranks()) << m.name;
  }
  EXPECT_TRUE(serial);
  EXPECT_TRUE(parallel);
  EXPECT_GE(outputs.size(), 8u);  // raw + 4 probe-based + 3 estimators + 2 CLC
}

TEST(Differential, MethodVocabularyMatchesEmittedMethods) {
  // The closed vocabulary drives scenario expect.accuracy validation and the
  // chronocheck --method dispatcher; every emitted method must be in it, and
  // every probe-era name in it must actually be emitted on a probe fixture.
  const AppRunResult res = small_fixture();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto outputs = verify::run_all_methods(res.trace, res.offsets, msgs, schedule);
  const auto& known = verify::all_method_names();
  for (const auto& m : outputs) {
    EXPECT_NE(std::find(known.begin(), known.end(), m.name), known.end())
        << m.name << " missing from all_method_names()";
  }
  for (const auto& name : known) {
    const auto it = std::find_if(outputs.begin(), outputs.end(),
                                 [&](const auto& m) { return m.name == name; });
    EXPECT_NE(it, outputs.end()) << name << " not emitted by run_all_methods";
  }
  EXPECT_NE(std::find(known.begin(), known.end(), "kalman-drift"), known.end());
}

TEST(Differential, GroundTruthAccuracyRanksMethods) {
  // Mid-run probe batches matter here: with only the endpoint batches the
  // filter has two knots and degenerates to exactly Eq. 3's line.
  SweepConfig cfg;
  cfg.rounds = 60;
  cfg.gap_mean = 3.0;
  cfg.collective_every = 20;
  cfg.probe_every = 15;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = 42;
  const AppRunResult res = run_sweep(cfg, std::move(job));
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto outputs = verify::run_all_methods(res.trace, res.offsets, msgs, schedule);
  const auto accuracy = verify::ground_truth_accuracy(res.trace, outputs);
  ASSERT_EQ(accuracy.size(), outputs.size());

  auto find = [&](const char* name) {
    const auto it = std::find_if(accuracy.begin(), accuracy.end(),
                                 [&](const auto& a) { return a.name == name; });
    EXPECT_NE(it, accuracy.end()) << name;
    return *it;
  };
  const auto raw = find("raw");
  const auto linear = find("linear-interpolation");
  const auto kalman = find("kalman-drift");
  for (const auto& a : accuracy) {
    EXPECT_GT(a.events, 0u) << a.name;
    EXPECT_TRUE(std::isfinite(a.rms_error)) << a.name;
    EXPECT_GE(a.max_abs_error, a.rms_error) << a.name;
  }
  // Any drift model beats no correction; on the wandering TSC fixture the
  // model-based filter beats the single mean-drift line too.
  EXPECT_LT(linear.rms_error, raw.rms_error);
  EXPECT_LT(kalman.rms_error, linear.rms_error);
}

TEST(Differential, OmpClcCrossCheckIsCleanOnBenchFixture) {
  OmpBenchConfig cfg;
  cfg.threads = 6;
  cfg.regions = 120;
  cfg.seed = 42;
  const OmpBenchResult res = run_omp_benchmark(cfg);
  const Placement pl = omp_thread_placement(cfg.node, cfg.threads);
  std::vector<std::string> failures;
  const std::size_t comparisons = verify::cross_check_omp_clc(res.trace, pl, failures);
  EXPECT_GT(comparisons, 0u);
  EXPECT_TRUE(failures.empty()) << failures.front();
}

TEST(Differential, HealthyFixtureIsClean) {
  const AppRunResult res = small_fixture();
  const auto report = verify::run_differential_suite(res.trace, res.offsets);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_FALSE(report.pairs.empty());
}

TEST(Differential, SeededDivergenceInContractPairIsCaught) {
  const AppRunResult res = small_fixture();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  auto outputs = verify::run_all_methods(res.trace, res.offsets, msgs, schedule);

  for (auto& m : outputs) {
    if (m.name != "interpolation+clc-parallel") continue;
    for (Rank r = 0; r < m.ts.ranks(); ++r) {
      if (!m.ts.of_rank(r).empty()) {
        m.ts.of_rank(r).front() += 1e-3;  // simulate a miscompiled thread
        break;
      }
    }
  }
  const auto report = verify::compare_methods(res.trace, outputs, 1e-9);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures.front().find("clc"), std::string::npos)
      << report.failures.front();
}

TEST(Differential, ScannersAgreeOnFixture) {
  const AppRunResult res = small_fixture();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  std::vector<std::string> failures;
  const std::size_t comparisons = verify::cross_check_scans(res.trace, schedule, failures);
  EXPECT_EQ(comparisons, 2u);
  EXPECT_TRUE(failures.empty()) << failures.front();
}

TEST(Differential, ToleranceMustBeNonNegative) {
  const AppRunResult res = small_fixture();
  EXPECT_THROW(verify::compare_methods(res.trace, {}, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
