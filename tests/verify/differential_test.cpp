// Differential cross-checks: a healthy simulated run must come back clean,
// and a seeded divergence in a contracted-identical pair must be caught.
#include "verify/differential.hpp"

#include <gtest/gtest.h>

#include "trace/logical_messages.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

AppRunResult small_fixture(std::uint64_t seed = 42) {
  SweepConfig cfg;
  cfg.rounds = 60;
  cfg.gap_mean = 3.0;  // long gaps: drift accumulates, Eq. 1 violations appear
  cfg.collective_every = 20;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = seed;
  return run_sweep(cfg, std::move(job));
}

TEST(Differential, RunAllMethodsIncludesClcContractPair) {
  const AppRunResult res = small_fixture();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto outputs = verify::run_all_methods(res.trace, res.offsets, msgs, schedule);

  bool serial = false, parallel = false;
  for (const auto& m : outputs) {
    if (m.name == "interpolation+clc-serial") serial = m.restores_clock_condition;
    if (m.name == "interpolation+clc-parallel") parallel = m.restores_clock_condition;
    ASSERT_EQ(m.ts.ranks(), res.trace.ranks()) << m.name;
  }
  EXPECT_TRUE(serial);
  EXPECT_TRUE(parallel);
  EXPECT_GE(outputs.size(), 7u);  // raw + 3 probe-based + 3 estimators + 2 CLC
}

TEST(Differential, HealthyFixtureIsClean) {
  const AppRunResult res = small_fixture();
  const auto report = verify::run_differential_suite(res.trace, res.offsets);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_FALSE(report.pairs.empty());
}

TEST(Differential, SeededDivergenceInContractPairIsCaught) {
  const AppRunResult res = small_fixture();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  auto outputs = verify::run_all_methods(res.trace, res.offsets, msgs, schedule);

  for (auto& m : outputs) {
    if (m.name != "interpolation+clc-parallel") continue;
    for (Rank r = 0; r < m.ts.ranks(); ++r) {
      if (!m.ts.of_rank(r).empty()) {
        m.ts.of_rank(r).front() += 1e-3;  // simulate a miscompiled thread
        break;
      }
    }
  }
  const auto report = verify::compare_methods(res.trace, outputs, 1e-9);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures.front().find("clc"), std::string::npos)
      << report.failures.front();
}

TEST(Differential, ScannersAgreeOnFixture) {
  const AppRunResult res = small_fixture();
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  std::vector<std::string> failures;
  const std::size_t comparisons = verify::cross_check_scans(res.trace, schedule, failures);
  EXPECT_EQ(comparisons, 2u);
  EXPECT_TRUE(failures.empty()) << failures.front();
}

TEST(Differential, ToleranceMustBeNonNegative) {
  const AppRunResult res = small_fixture();
  EXPECT_THROW(verify::compare_methods(res.trace, {}, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
