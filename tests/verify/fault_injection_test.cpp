// Fault injectors: deterministic, shape-preserving, and consumable by the
// correction stack without crashes.
#include "verify/fault_injection.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "sync/interpolation.hpp"
#include "topology/cluster.hpp"

namespace chronosync {
namespace {

OffsetStore healthy_store() {
  OffsetStore store(2);
  store.add(0, {0.0, 0.0, 0.0});
  store.add(0, {100.0, 0.0, 0.0});
  store.add(1, {10.0, 1.0, 1e-5});
  store.add(1, {90.0, 2.0, 1e-5});
  return store;
}

Trace base_trace(int ranks) {
  return Trace(pinning::inter_node(clusters::xeon_rwth(), ranks),
               {0.47e-6, 0.86e-6, 4.29e-6}, "test");
}

void add_message(Trace& t, Rank from, Rank to, Time send_ts, Time recv_ts,
                 std::int64_t id) {
  Event s;
  s.type = EventType::Send;
  s.peer = to;
  s.msg_id = id;
  s.local_ts = s.true_ts = send_ts;
  t.events(from).push_back(s);
  Event r = s;
  r.type = EventType::Recv;
  r.peer = from;
  r.local_ts = r.true_ts = recv_ts;
  t.events(to).push_back(r);
}

TEST(FaultInjection, OutliersAreDeterministic) {
  const OffsetStore store = healthy_store();
  const OffsetStore a = verify::with_probe_outliers(store, 1e-3, 7);
  const OffsetStore b = verify::with_probe_outliers(store, 1e-3, 7);
  for (Rank r = 0; r < store.ranks(); ++r) {
    ASSERT_EQ(a.of(r).size(), b.of(r).size());
    for (std::size_t i = 0; i < a.of(r).size(); ++i) {
      EXPECT_DOUBLE_EQ(a.of(r)[i].worker_time, b.of(r)[i].worker_time);
      EXPECT_DOUBLE_EQ(a.of(r)[i].offset, b.of(r)[i].offset);
    }
  }
}

TEST(FaultInjection, OutlierStaysStrictlyInsideInterval) {
  const OffsetStore store = healthy_store();
  const OffsetStore out = verify::with_probe_outliers(store, 1e-3, 7);
  for (Rank r = 0; r < store.ranks(); ++r) {
    ASSERT_EQ(out.of(r).size(), store.of(r).size() + 1);
    // The interval endpoints the linear map consumes must stay untouched.
    EXPECT_DOUBLE_EQ(out.of(r).front().worker_time, store.of(r).front().worker_time);
    EXPECT_DOUBLE_EQ(out.of(r).back().worker_time, store.of(r).back().worker_time);
    EXPECT_DOUBLE_EQ(out.of(r).front().offset, store.of(r).front().offset);
    EXPECT_DOUBLE_EQ(out.of(r).back().offset, store.of(r).back().offset);
  }
}

TEST(FaultInjection, DuplicateProbesShareWorkerTime) {
  const OffsetStore out = verify::with_duplicate_probes(healthy_store(), 2);
  ASSERT_EQ(out.of(1).size(), 4u);
  EXPECT_DOUBLE_EQ(out.of(1)[0].worker_time, 10.0);
  EXPECT_DOUBLE_EQ(out.of(1)[1].worker_time, 10.0);
  EXPECT_DOUBLE_EQ(out.of(1)[2].worker_time, 10.0);
  // Stable sort: the original sample still leads its batch.
  EXPECT_DOUBLE_EQ(out.of(1)[0].offset, 1.0);
}

TEST(FaultInjection, DuplicateProbesFeedPiecewiseSafely) {
  // End-to-end regression for the batched-probe crash: duplicated knots pass
  // through PiecewiseInterpolation::from_store without aborting, and the
  // first sample of the batch wins.
  const OffsetStore out = verify::with_duplicate_probes(healthy_store());
  const PiecewiseInterpolation interp = PiecewiseInterpolation::from_store(out);
  EXPECT_DOUBLE_EQ(interp.correct(1, 10.0), 11.0);
}

TEST(FaultInjection, CollapsedProbesDegradeToOffsetAlignment) {
  const OffsetStore out = verify::with_collapsed_probes(healthy_store());
  for (const auto& m : out.of(1)) EXPECT_DOUBLE_EQ(m.worker_time, 10.0);
  const LinearInterpolation lin = LinearInterpolation::from_store(out);
  EXPECT_DOUBLE_EQ(lin.correct(1, 10.0), 11.0);
  EXPECT_DOUBLE_EQ(lin.correct(1, 1000.0), 1001.0);  // no drift term
}

TEST(FaultInjection, ClockStepShiftsOnlyLateEvents) {
  Trace t = base_trace(2);
  add_message(t, 0, 1, 1.0, 1.1, 0);
  add_message(t, 0, 1, 2.0, 2.1, 1);
  const Trace stepped = verify::with_clock_step(t, 1, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(stepped.events(1)[0].local_ts, 1.1);
  EXPECT_DOUBLE_EQ(stepped.events(1)[1].local_ts, 2.6);
  EXPECT_DOUBLE_EQ(stepped.events(0)[0].local_ts, 1.0);  // other ranks untouched
  // Positive steps keep rank-local monotonicity.
  EXPECT_LT(stepped.events(1)[0].local_ts, stepped.events(1)[1].local_ts);
}

TEST(FaultInjection, ClockStepRejectsNegativeStep) {
  Trace t = base_trace(2);
  EXPECT_THROW(verify::with_clock_step(t, 0, 0.0, -1e-3), std::invalid_argument);
  EXPECT_THROW(verify::with_clock_step(t, 5, 0.0, 1e-3), std::invalid_argument);
}

TEST(FaultInjection, OneSidedTrafficDropsBothEndpoints) {
  Trace t = base_trace(2);
  add_message(t, 0, 1, 1.0, 1.1, 0);  // low -> high survives
  add_message(t, 1, 0, 2.0, 2.1, 1);  // high -> low is dropped
  const Trace one_sided = verify::with_one_sided_traffic(t);
  for (Rank r = 0; r < one_sided.ranks(); ++r) {
    for (const Event& e : one_sided.events(r)) {
      if (e.type == EventType::Send) {
        EXPECT_GT(e.peer, r);
      }
      if (e.type == EventType::Recv) {
        EXPECT_LT(e.peer, r);
      }
    }
  }
  // No orphaned halves: matching still succeeds and finds the survivor only.
  EXPECT_EQ(one_sided.match_messages().size(), 1u);
}

TEST(FaultInjection, EmptyRanksClearsAlternatingRanks) {
  Trace t = base_trace(4);
  add_message(t, 0, 1, 1.0, 1.1, 0);
  add_message(t, 2, 3, 1.0, 1.1, 1);
  const Trace holey = verify::with_empty_ranks(t);
  EXPECT_EQ(holey.ranks(), 4);
  EXPECT_TRUE(holey.events(1).empty());
  EXPECT_TRUE(holey.events(3).empty());
  EXPECT_FALSE(holey.events(0).empty());
  EXPECT_FALSE(holey.events(2).empty());
  EXPECT_THROW(verify::with_empty_ranks(t, 1), std::invalid_argument);
}

TEST(FaultInjection, PoisonedProbesAppendNonFiniteSamples) {
  const OffsetStore store = healthy_store();
  const OffsetStore out = verify::with_poisoned_probes(store);
  for (Rank r = 0; r < store.ranks(); ++r) {
    ASSERT_EQ(out.of(r).size(), store.of(r).size() + 2);
    // The original finite record survives verbatim (same order, same values).
    std::size_t finite = 0;
    for (const auto& m : out.of(r)) {
      if (std::isfinite(m.worker_time) && std::isfinite(m.offset)) {
        EXPECT_DOUBLE_EQ(m.worker_time, store.of(r)[finite].worker_time);
        EXPECT_DOUBLE_EQ(m.offset, store.of(r)[finite].offset);
        ++finite;
      }
    }
    EXPECT_EQ(finite, store.of(r).size());
  }
}

TEST(FaultInjection, PoisonedProbesFeedInterpolationSafely) {
  // End-to-end regression for the non-finite-sample bug: a NaN offset used to
  // flow straight into the Eq. 3 endpoints and poison every corrected
  // timestamp.  The from_store screening now drops it.
  const OffsetStore out = verify::with_poisoned_probes(healthy_store());
  const LinearInterpolation lin = LinearInterpolation::from_store(out);
  const PiecewiseInterpolation pw = PiecewiseInterpolation::from_store(out);
  for (double w : {0.0, 10.0, 50.0, 90.0, 1000.0}) {
    EXPECT_TRUE(std::isfinite(lin.correct(1, w))) << w;
    EXPECT_TRUE(std::isfinite(pw.correct(1, w))) << w;
  }
  EXPECT_DOUBLE_EQ(lin.correct(1, 10.0), 11.0);
  EXPECT_DOUBLE_EQ(pw.correct(1, 10.0), 11.0);
}

TEST(FaultInjection, EveryClassHasAName) {
  for (const auto f : verify::all_fault_classes()) {
    EXPECT_NE(verify::to_string(f), "?");
  }
}

}  // namespace
}  // namespace chronosync
