// Shared test fixtures for the trace-I/O battery: a randomized structurally
// valid trace generator and a bit-exact trace comparison.  Used by the
// round-trip property suite, the mutation-corpus fuzz tests, and the
// streaming-analysis equivalence tests.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "topology/cluster.hpp"
#include "trace/trace.hpp"

namespace chronosync::testutil {

/// Generates a random but structurally valid trace covering all event types,
/// empty ranks, unmatched messages, and (optionally) extreme-but-finite
/// doubles for the timestamps.
inline Trace random_trace(std::uint64_t seed, bool extreme_doubles = false) {
  Rng rng(seed);
  const int ranks = static_cast<int>(rng.uniform_int(1, 6));
  Trace t(pinning::block(clusters::xeon_rwth(), ranks),
          {rng.uniform(1e-7, 1e-6), rng.uniform(1e-6, 2e-6), rng.uniform(2e-6, 9e-6)},
          "fuzz-timer");
  const int nregions = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < nregions; ++i) t.intern_region("region_" + std::to_string(i));

  // NaN-free extremes: serialization must round-trip every finite double
  // bit-exactly, including signed zeros, denormals, and the range ends.
  static constexpr double kExtremes[] = {
      0.0, -0.0, 5e-324, -5e-324, 2.2250738585072014e-308, 1.7976931348623157e308,
      -1.7976931348623157e308, 1e-9, 3600.0, 1.0 + 2.220446049250313e-16, -1e308,
  };
  constexpr std::size_t kNumExtremes = sizeof(kExtremes) / sizeof(kExtremes[0]);

  // Message ids are rank-scoped so a random Recv can never pair with a Send
  // on the same rank (self-messages have no defined latency).
  std::vector<std::int64_t> next_send(static_cast<std::size_t>(ranks), 0);
  for (Rank r = 0; r < ranks; ++r) {
    Time now = rng.uniform(0.0, 1.0);
    const int n = static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < n; ++i) {
      Event e;
      const int kind = static_cast<int>(rng.uniform_int(0, 5));
      switch (kind) {
        case 0:
          e.type = EventType::Enter;
          e.region = nregions ? static_cast<std::int32_t>(rng.uniform_int(0, nregions - 1)) : -1;
          break;
        case 1:
          e.type = EventType::Exit;
          e.region = nregions ? static_cast<std::int32_t>(rng.uniform_int(0, nregions - 1)) : -1;
          break;
        case 2:
          e.type = EventType::Send;
          e.peer = static_cast<Rank>(rng.uniform_int(0, ranks - 1));
          e.tag = static_cast<Tag>(rng.uniform_int(0, 9));
          e.bytes = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
          e.msg_id = 1000000LL * r + next_send[static_cast<std::size_t>(r)]++;
          break;
        case 3: {
          e.type = EventType::Recv;
          e.peer = static_cast<Rank>(rng.uniform_int(0, ranks - 1));
          // Maybe match a send of another rank; otherwise stay half-matched.
          const Rank other = static_cast<Rank>(rng.uniform_int(0, ranks - 1));
          const std::int64_t sent = next_send[static_cast<std::size_t>(other)];
          e.msg_id = (other != r && sent > 0 && rng.bernoulli(0.5))
                         ? 1000000LL * other + rng.uniform_int(0, sent - 1)
                         : 1000000000LL + 1000000LL * r +
                               next_send[static_cast<std::size_t>(r)]++;
          break;
        }
        case 4:
          e.type = static_cast<EventType>(rng.uniform_int(
              static_cast<int>(EventType::Fork), static_cast<int>(EventType::BarrierExit)));
          e.omp_instance = static_cast<std::int32_t>(rng.uniform_int(0, 3));
          break;
        default:
          e.type = rng.bernoulli(0.5) ? EventType::CollBegin : EventType::CollEnd;
          e.coll = static_cast<CollectiveKind>(rng.uniform_int(0, 7));
          e.coll_id = rng.uniform_int(0, 5);
          e.root = 0;
          break;
      }
      now += rng.uniform(0.0, 1e-3);
      if (extreme_doubles) {
        e.local_ts = kExtremes[rng.uniform_int(0, kNumExtremes - 1)];
        e.true_ts = kExtremes[rng.uniform_int(0, kNumExtremes - 1)];
      } else {
        e.local_ts = now;
        e.true_ts = now + rng.normal(0.0, 1e-6);
      }
      e.thread = static_cast<ThreadId>(rng.uniform_int(0, 2));
      t.events(r).push_back(e);
    }
  }
  return t;
}

/// Bit-exact double comparison: distinguishes +0.0 from -0.0.
inline bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Field-by-field trace equality, bit-exact on timestamps.
inline bool traces_equal(const Trace& a, const Trace& b) {
  if (a.ranks() != b.ranks() || a.timer_name() != b.timer_name()) return false;
  if (a.regions() != b.regions()) return false;
  for (std::size_t d = 0; d < 3; ++d) {
    if (!same_bits(a.domain_min_latency()[d], b.domain_min_latency()[d])) return false;
  }
  for (Rank r = 0; r < a.ranks(); ++r) {
    if (!(a.placement().location(r) == b.placement().location(r))) return false;
    const auto& ea = a.events(r);
    const auto& eb = b.events(r);
    if (ea.size() != eb.size()) return false;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      const Event& x = ea[i];
      const Event& y = eb[i];
      if (x.type != y.type || !same_bits(x.local_ts, y.local_ts) ||
          !same_bits(x.true_ts, y.true_ts) || x.region != y.region || x.peer != y.peer ||
          x.tag != y.tag || x.bytes != y.bytes || x.msg_id != y.msg_id || x.coll != y.coll ||
          x.coll_id != y.coll_id || x.root != y.root || x.omp_instance != y.omp_instance ||
          x.thread != y.thread) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace chronosync::testutil
