#include "trace/otf_text.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "topology/cluster.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

Trace sample_trace() {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
          "intel-tsc");
  t.intern_region("main loop");  // name with a space
  Event s;
  s.type = EventType::Send;
  s.peer = 1;
  s.tag = 5;
  s.bytes = 4096;
  s.msg_id = 77;
  s.local_ts = 1.2345678901234567;
  s.true_ts = 1.23;
  t.events(0).push_back(s);
  Event c;
  c.type = EventType::CollBegin;
  c.coll = CollectiveKind::Alltoall;
  c.coll_id = (static_cast<std::int64_t>(3) << 32) | 9;
  c.root = 1;
  c.local_ts = c.true_ts = 2.0;
  t.events(1).push_back(c);
  return t;
}

TEST(OtfText, RoundTripExact) {
  Trace t = sample_trace();
  std::stringstream buf;
  write_text_trace(t, buf);
  Trace u = read_text_trace(buf);

  EXPECT_EQ(u.ranks(), 2);
  EXPECT_EQ(u.timer_name(), "intel-tsc");
  EXPECT_DOUBLE_EQ(u.min_latency(0, 1), 4.29e-6);
  ASSERT_EQ(u.regions().size(), 1u);
  EXPECT_EQ(u.region_name(0), "main loop");

  const Event& s = u.events(0)[0];
  EXPECT_EQ(s.type, EventType::Send);
  EXPECT_EQ(s.msg_id, 77);
  EXPECT_DOUBLE_EQ(s.local_ts, 1.2345678901234567);  // 17-digit exactness
  const Event& c = u.events(1)[0];
  EXPECT_EQ(c.coll, CollectiveKind::Alltoall);
  EXPECT_EQ(c.coll_id, (static_cast<std::int64_t>(3) << 32) | 9);
}

TEST(OtfText, IsHumanReadable) {
  Trace t = sample_trace();
  std::stringstream buf;
  write_text_trace(t, buf);
  const std::string s = buf.str();
  EXPECT_NE(s.find("CSTXT 1"), std::string::npos);
  EXPECT_NE(s.find("EV 0 SEND "), std::string::npos);
  EXPECT_NE(s.find("REGION 0 main loop"), std::string::npos);
}

TEST(OtfText, RejectsGarbageAndMalformed) {
  std::stringstream nothead("hello world");
  EXPECT_THROW(read_text_trace(nothead), std::invalid_argument);
  std::stringstream malformed("CSTXT 1\nRANK 0 0 0 0\nEV 0 SEND oops\n");
  EXPECT_THROW(read_text_trace(malformed), std::invalid_argument);
  std::stringstream badkind("CSTXT 1\nRANK 0 0 0 0\nBOGUS 1 2 3\n");
  EXPECT_THROW(read_text_trace(badkind), std::invalid_argument);
}

TEST(OtfText, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/cs_trace.txt";
  Trace t = sample_trace();
  write_text_trace_file(t, path);
  Trace u = read_text_trace_file(path);
  EXPECT_EQ(u.total_events(), t.total_events());
  std::remove(path.c_str());
}

TEST(OtfText, RealTraceAnalyzesIdentically) {
  SweepConfig cfg;
  cfg.rounds = 40;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = 11;
  AppRunResult res = run_sweep(cfg, std::move(job));

  std::stringstream buf;
  write_text_trace(res.trace, buf);
  Trace back = read_text_trace(buf);
  EXPECT_EQ(back.match_messages().size(), res.trace.match_messages().size());
  for (Rank r = 0; r < 4; ++r) {
    ASSERT_EQ(back.events(r).size(), res.trace.events(r).size());
    for (std::size_t i = 0; i < back.events(r).size(); ++i) {
      EXPECT_DOUBLE_EQ(back.events(r)[i].local_ts, res.trace.events(r)[i].local_ts);
    }
  }
}

}  // namespace
}  // namespace chronosync
