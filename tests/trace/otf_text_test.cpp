#include "trace/otf_text.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "topology/cluster.hpp"
#include "trace/trace_io_error.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

Trace sample_trace() {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
          "intel-tsc");
  t.intern_region("main loop");  // name with a space
  Event s;
  s.type = EventType::Send;
  s.peer = 1;
  s.tag = 5;
  s.bytes = 4096;
  s.msg_id = 77;
  s.local_ts = 1.2345678901234567;
  s.true_ts = 1.23;
  t.events(0).push_back(s);
  Event c;
  c.type = EventType::CollBegin;
  c.coll = CollectiveKind::Alltoall;
  c.coll_id = (static_cast<std::int64_t>(3) << 32) | 9;
  c.root = 1;
  c.local_ts = c.true_ts = 2.0;
  t.events(1).push_back(c);
  return t;
}

TEST(OtfText, RoundTripExact) {
  Trace t = sample_trace();
  std::stringstream buf;
  write_text_trace(t, buf);
  Trace u = read_text_trace(buf);

  EXPECT_EQ(u.ranks(), 2);
  EXPECT_EQ(u.timer_name(), "intel-tsc");
  EXPECT_DOUBLE_EQ(u.min_latency(0, 1), 4.29e-6);
  ASSERT_EQ(u.regions().size(), 1u);
  EXPECT_EQ(u.region_name(0), "main loop");

  const Event& s = u.events(0)[0];
  EXPECT_EQ(s.type, EventType::Send);
  EXPECT_EQ(s.msg_id, 77);
  EXPECT_DOUBLE_EQ(s.local_ts, 1.2345678901234567);  // 17-digit exactness
  const Event& c = u.events(1)[0];
  EXPECT_EQ(c.coll, CollectiveKind::Alltoall);
  EXPECT_EQ(c.coll_id, (static_cast<std::int64_t>(3) << 32) | 9);
}

TEST(OtfText, IsHumanReadable) {
  Trace t = sample_trace();
  std::stringstream buf;
  write_text_trace(t, buf);
  const std::string s = buf.str();
  EXPECT_NE(s.find("CSTXT 1"), std::string::npos);
  EXPECT_NE(s.find("EV 0 SEND "), std::string::npos);
  EXPECT_NE(s.find("REGION 0 main loop"), std::string::npos);
}

TEST(OtfText, RejectsGarbageAndMalformed) {
  std::stringstream nothead("hello world");
  EXPECT_THROW(read_text_trace(nothead), std::invalid_argument);
  std::stringstream malformed("CSTXT 1\nRANK 0 0 0 0\nEV 0 SEND oops\n");
  EXPECT_THROW(read_text_trace(malformed), std::invalid_argument);
  std::stringstream badkind("CSTXT 1\nRANK 0 0 0 0\nBOGUS 1 2 3\n");
  EXPECT_THROW(read_text_trace(badkind), std::invalid_argument);
}

// Strict-reader regressions: every malformed record is rejected with the
// 1-based line number where it occurs, instead of being silently skipped or
// parsed as zeros.
std::string expect_text_error(const std::string& body) {
  std::stringstream in(body);
  try {
    read_text_trace(in);
    ADD_FAILURE() << "expected TraceIoError for:\n" << body;
    return {};
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Malformed) << e.what();
    return e.what();
  }
}

TEST(OtfText, MissingEvFieldsReportLineNumber) {
  const std::string msg = expect_text_error(
      "CSTXT 1\n"
      "RANK 0 0 0 0\n"
      "EV 0 SEND 1.0 1.0 -1 1\n");  // only 6 of 14 EV fields
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("EV"), std::string::npos) << msg;
}

TEST(OtfText, TrailingEvFieldsAreRejected) {
  const std::string msg = expect_text_error(
      "CSTXT 1\n"
      "RANK 0 0 0 0\n"
      "EV 0 ENTER 1.0 1.0 -1 -1 -1 0 -1 0 -1 -1 -1 0 EXTRA\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("trailing"), std::string::npos) << msg;
}

TEST(OtfText, UnknownEventTypeReportsLineNumber) {
  const std::string msg = expect_text_error(
      "CSTXT 1\n"
      "RANK 0 0 0 0\n"
      "\n"  // blank lines do not confuse the line counter
      "EV 0 TELEPORT 1.0 1.0 -1 -1 -1 0 -1 0 -1 -1 -1 0\n");
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("TELEPORT"), std::string::npos) << msg;
}

TEST(OtfText, CollKindOutOfRangeReportsLineNumber) {
  const std::string msg = expect_text_error(
      "CSTXT 1\n"
      "RANK 0 0 0 0\n"
      "EV 0 COLL_BEGIN 1.0 1.0 -1 -1 -1 0 -1 99 -1 -1 -1 0\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
}

TEST(OtfText, EvRankOutOfRangeReportsItsOwnLine) {
  // The rank check is deferred until all RANK records are known, but the
  // error still points at the offending EV line.
  const std::string msg = expect_text_error(
      "CSTXT 1\n"
      "RANK 0 0 0 0\n"
      "EV 7 ENTER 1.0 1.0 -1 -1 -1 0 -1 0 -1 -1 -1 0\n"
      "RANK 1 0 0 1\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 7"), std::string::npos) << msg;
}

TEST(OtfText, MalformedRankAndLatencyRecordsAreRejected) {
  const std::string m1 = expect_text_error("CSTXT 1\nRANK 0 0 zero 0\n");
  EXPECT_NE(m1.find("line 2"), std::string::npos) << m1;
  const std::string m2 = expect_text_error("CSTXT 1\nLATENCY 1e-7 2e-7\nRANK 0 0 0 0\n");
  EXPECT_NE(m2.find("line 2"), std::string::npos) << m2;
  const std::string m3 = expect_text_error("CSTXT 1\nRANK 1 0 0 0\n");  // ids not 0..n-1
  EXPECT_NE(m3.find("out of order"), std::string::npos) << m3;
}

TEST(OtfText, MissingTimerNameIsRejected) {
  const std::string msg = expect_text_error("CSTXT 1\nTIMER\nRANK 0 0 0 0\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(OtfText, NoRankRecordsIsRejected) {
  expect_text_error("CSTXT 1\nTIMER tsc\n");
}

TEST(OtfText, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/cs_trace.txt";
  Trace t = sample_trace();
  write_text_trace_file(t, path);
  Trace u = read_text_trace_file(path);
  EXPECT_EQ(u.total_events(), t.total_events());
  std::remove(path.c_str());
}

TEST(OtfText, RealTraceAnalyzesIdentically) {
  SweepConfig cfg;
  cfg.rounds = 40;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = 11;
  AppRunResult res = run_sweep(cfg, std::move(job));

  std::stringstream buf;
  write_text_trace(res.trace, buf);
  Trace back = read_text_trace(buf);
  EXPECT_EQ(back.match_messages().size(), res.trace.match_messages().size());
  for (Rank r = 0; r < 4; ++r) {
    ASSERT_EQ(back.events(r).size(), res.trace.events(r).size());
    for (std::size_t i = 0; i < back.events(r).size(); ++i) {
      EXPECT_DOUBLE_EQ(back.events(r)[i].local_ts, res.trace.events(r)[i].local_ts);
    }
  }
}

}  // namespace
}  // namespace chronosync
