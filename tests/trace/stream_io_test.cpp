#include "trace/stream_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "../testutil/random_trace.hpp"
#include "topology/cluster.hpp"
#include "trace/trace_io.hpp"

namespace chronosync {
namespace {

Trace sample_trace() {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 3), {0.47e-6, 0.86e-6, 4.29e-6},
          "intel-tsc");
  t.intern_region("main");
  t.intern_region("halo");
  Event s;
  s.type = EventType::Send;
  s.peer = 1;
  s.tag = 5;
  s.bytes = 4096;
  s.msg_id = 77;
  s.local_ts = 1.25;
  s.true_ts = 1.24;
  t.events(0).push_back(s);
  Event r = s;
  r.type = EventType::Recv;
  r.peer = 0;
  r.local_ts = 1.26;
  t.events(1).push_back(r);
  Event c;
  c.type = EventType::CollBegin;
  c.coll = CollectiveKind::Allreduce;
  c.coll_id = 3;
  c.root = 0;
  c.local_ts = 2.0;
  c.true_ts = 2.0;
  t.events(2).push_back(c);
  return t;
}

Trace bulk_trace(int ranks, int events_per_rank) {
  Trace t(pinning::block(clusters::xeon_rwth(), ranks), {1e-7, 1e-6, 5e-6}, "bulk");
  t.intern_region("loop");
  for (Rank r = 0; r < ranks; ++r) {
    for (int i = 0; i < events_per_rank; ++i) {
      Event e;
      e.type = (i % 2 == 0) ? EventType::Enter : EventType::Exit;
      e.region = 0;
      e.local_ts = 0.5 + i * 1e-6 + r * 1e-8;
      e.true_ts = e.local_ts + 1e-9;
      e.thread = i % 3;
      t.events(r).push_back(e);
    }
  }
  return t;
}

TEST(StreamIo, RoundTripExact) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace_v2(t, buf);
  const Trace u = read_trace_v2(buf);
  EXPECT_EQ(u.ranks(), 3);
  EXPECT_EQ(u.timer_name(), "intel-tsc");
  EXPECT_EQ(u.total_events(), t.total_events());
  EXPECT_EQ(u.regions().size(), 2u);
  EXPECT_EQ(u.region_name(1), "halo");
  const Event& s = u.events(0)[0];
  EXPECT_EQ(s.type, EventType::Send);
  EXPECT_EQ(s.msg_id, 77);
  EXPECT_DOUBLE_EQ(s.local_ts, 1.25);
  const Event& c = u.events(2)[0];
  EXPECT_EQ(c.coll, CollectiveKind::Allreduce);
  EXPECT_EQ(c.coll_id, 3);
}

TEST(StreamIo, DispatchReadsV2) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace_v2(t, buf);
  const Trace u = read_trace(buf);  // generic entry point
  EXPECT_EQ(u.total_events(), t.total_events());
}

TEST(StreamIo, DispatchStillReadsV1) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(t, buf);  // legacy v1 writer
  const Trace u = read_trace(buf);
  EXPECT_EQ(u.total_events(), t.total_events());
  EXPECT_EQ(u.timer_name(), "intel-tsc");
}

TEST(StreamIo, MetaAvailableBeforeEvents) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace_v2(t, buf);
  TraceReader reader(buf);
  EXPECT_EQ(reader.ranks(), 3);
  EXPECT_EQ(reader.meta().timer_name, "intel-tsc");
  EXPECT_EQ(reader.meta().regions.size(), 2u);
  EXPECT_DOUBLE_EQ(reader.meta().domain_min_latency[2], 4.29e-6);
  EXPECT_EQ(reader.events_read(), 0u);
}

TEST(StreamIo, StreamsRankByRank) {
  const Trace t = bulk_trace(4, 100);
  std::stringstream buf;
  write_trace_v2(t, buf, /*events_per_chunk=*/32);
  TraceReader reader(buf);
  EventBlock block;
  Rank last = 0;
  std::uint64_t total = 0;
  while (reader.next(block)) {
    EXPECT_GE(block.rank, last);
    EXPECT_FALSE(block.events.empty());
    EXPECT_LE(block.events.size(), 32u);
    last = block.rank;
    total += block.events.size();
  }
  EXPECT_EQ(total, 400u);
  EXPECT_EQ(reader.events_read(), 400u);
  // After the footer, next() keeps returning false.
  EXPECT_FALSE(reader.next(block));
}

TEST(StreamIo, EmptyRanksAndZeroRankTraces) {
  // A trace whose ranks have no events.
  Trace empty_events(pinning::block(clusters::xeon_rwth(), 3), {1e-7, 1e-6, 5e-6}, "idle");
  {
    std::stringstream buf;
    write_trace_v2(empty_events, buf);
    const Trace u = read_trace_v2(buf);
    EXPECT_EQ(u.ranks(), 3);
    EXPECT_EQ(u.total_events(), 0u);
  }
  // A default-constructed, zero-rank trace.
  {
    const Trace zero;
    std::stringstream buf;
    write_trace_v2(zero, buf);
    const Trace u = read_trace_v2(buf);
    EXPECT_EQ(u.ranks(), 0);
    EXPECT_EQ(u.total_events(), 0u);
  }
}

TEST(StreamIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/cs_trace_v2.bin";
  const Trace t = bulk_trace(2, 50);
  write_trace_v2_file(t, path);
  const Trace u = read_trace_v2_file(path);
  EXPECT_EQ(u.total_events(), t.total_events());
  // The generic file entry point dispatches on the version field too.
  const Trace v = read_trace_file(path);
  EXPECT_EQ(v.total_events(), t.total_events());
  std::remove(path.c_str());
}

TEST(StreamIo, WriterEnforcesRankMajorOrder) {
  std::stringstream buf;
  TraceWriter w(buf, TraceMeta::of(sample_trace()));
  Event e;
  e.type = EventType::Enter;
  w.append(2, e);
  EXPECT_THROW(w.append(1, e), std::invalid_argument);  // rank going backwards
  EXPECT_THROW(w.append(3, e), std::invalid_argument);  // rank outside placement
  w.finish();
  EXPECT_THROW(w.append(2, e), std::invalid_argument);  // append after finish
  EXPECT_THROW(w.finish(), std::invalid_argument);      // double finish
}

TEST(StreamIo, UnfinishedWriterLeavesRejectedFile) {
  std::stringstream buf;
  {
    TraceWriter w(buf, TraceMeta::of(sample_trace()));
    Event e;
    e.type = EventType::Enter;
    w.append(0, e);
    // no finish(): footer missing
  }
  EXPECT_THROW(read_trace_v2(buf), TraceIoError);
}

TEST(StreamIo, WriterDestroyedMidChunkIsTypedTruncation) {
  // Destroying a writer with buffered (unflushed) events and no finish()
  // drops the partial chunk and the footer.  Both the sequential reader and
  // the index pass must report Truncated — never hand back a silently
  // shortened trace.
  const Trace t = bulk_trace(2, 100);
  std::stringstream buf;
  {
    TraceWriter w(buf, TraceMeta::of(t), /*events_per_chunk=*/64);
    for (Rank r = 0; r < t.ranks(); ++r) {
      for (const Event& e : t.events(r)) w.append(r, e);
    }
    EXPECT_FALSE(w.finished());
    // no finish(): rank 1's second chunk (36 events) is still buffered
  }
  try {
    TraceReader reader(buf);
    EventBlock block;
    while (reader.next(block)) {
    }
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Truncated);
  }
  buf.clear();
  buf.seekg(0);
  try {
    index_trace_v2(buf);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Truncated);
  }
}

TEST(StreamIo, CompleteChunksWithoutFooterAreTruncated) {
  // All event chunks flushed and intact, only the footer absent: the most
  // deceptive truncation, since every byte present parses cleanly.
  const Trace t = bulk_trace(1, 64);
  std::stringstream buf;
  {
    TraceWriter w(buf, TraceMeta::of(t), /*events_per_chunk=*/64);
    for (const Event& e : t.events(0)) w.append(0, e);
    // exactly one full chunk was flushed; no finish()
  }
  try {
    index_trace_v2(buf);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Truncated);
  }
}

TEST(StreamIo, IndexAndChunkReaderGiveRandomAccess) {
  const Trace t = bulk_trace(3, 500);
  const std::string path = testing::TempDir() + "/cs_streamio_index.cstr";
  write_trace_v2_file(t, path, /*events_per_chunk=*/128);

  std::ifstream f(path, std::ios::binary);
  const TraceIndex idx = index_trace_v2(f);
  EXPECT_EQ(idx.total_events, t.total_events());
  ASSERT_EQ(idx.rank_events.size(), 3u);
  for (Rank r = 0; r < 3; ++r) EXPECT_EQ(idx.rank_events[r], t.events(r).size());
  ASSERT_EQ(idx.chunks.size(), 12u);  // ceil(500/128) = 4 chunks per rank

  // Chunks decode out of order and bit-exactly through the random-access path.
  ChunkReader reader(f, idx);
  EventBlock block;
  for (std::size_t c = idx.chunks.size(); c-- > 0;) {
    const ChunkRef& ref = idx.chunks[c];
    reader.read(ref, block);
    ASSERT_EQ(block.events.size(), ref.count);
    EXPECT_EQ(block.rank, ref.rank);
    const Event& first = block.events.front();
    const std::size_t base = (c % 4) * 128;
    EXPECT_TRUE(testutil::same_bits(first.local_ts, t.events(ref.rank)[base].local_ts));
  }
  std::remove(path.c_str());
}

TEST(StreamIo, RejectsGarbage) {
  std::stringstream buf("this is definitely not a trace at all");
  try {
    read_trace_v2(buf);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::BadMagic);
  }
}

TEST(StreamIo, RejectsV1HeaderThroughV2Reader) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace(t, buf);
  try {
    read_trace_v2(buf);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::BadVersion);
  }
}

TEST(StreamIo, RejectsTruncationAnywhere) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace_v2(t, buf);
  const std::string blob = buf.str();
  // Every strict prefix must be rejected: the footer (count + whole-file CRC)
  // makes truncation detectable at any byte.
  for (std::size_t n = 0; n < blob.size(); ++n) {
    std::stringstream cut(blob.substr(0, n));
    EXPECT_THROW(read_trace_v2(cut), TraceIoError) << "prefix length " << n;
  }
}

TEST(StreamIo, RejectsSingleBitFlipAnywhere) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace_v2(t, buf);
  const std::string blob = buf.str();
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = blob;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      std::stringstream in(mutated);
      EXPECT_THROW(read_trace_v2(in), TraceIoError)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(StreamIo, RejectsTrailingData) {
  const Trace t = sample_trace();
  std::stringstream buf;
  write_trace_v2(t, buf);
  std::string blob = buf.str();
  blob += "extra";
  std::stringstream in(blob);
  try {
    read_trace_v2(in);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Malformed);
  }
}

TEST(StreamIo, MissingFileThrowsIoError) {
  try {
    read_trace_v2_file("/nonexistent/path/trace_v2.bin");
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Io);
  }
}

TEST(StreamIo, V2IsSmallerThanV1) {
  // Delta + varint encoding should beat the fixed-width v1 layout on a
  // realistic monotone-timestamp trace.
  const Trace t = bulk_trace(4, 2000);
  std::stringstream v1;
  std::stringstream v2;
  write_trace(t, v1);
  write_trace_v2(t, v2);
  EXPECT_LT(v2.str().size(), v1.str().size() / 2);
}

TEST(StreamIo, BytesWrittenMatchesStream) {
  const Trace t = sample_trace();
  std::stringstream buf;
  TraceWriter w(buf, TraceMeta::of(t));
  for (Rank r = 0; r < t.ranks(); ++r) {
    for (const Event& e : t.events(r)) w.append(r, e);
  }
  w.finish();
  EXPECT_EQ(w.bytes_written(), buf.str().size());
  EXPECT_EQ(w.events_written(), t.total_events());
}

}  // namespace
}  // namespace chronosync
