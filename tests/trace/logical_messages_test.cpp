#include "trace/logical_messages.hpp"

#include <gtest/gtest.h>

#include "topology/cluster.hpp"

namespace chronosync {
namespace {

/// Builds a trace with one collective instance over `ranks` ranks.
Trace coll_trace(int ranks, CollectiveKind kind, Rank root) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), ranks), {0.47e-6, 0.86e-6, 4.29e-6},
          "test");
  for (Rank r = 0; r < ranks; ++r) {
    Event b;
    b.type = EventType::CollBegin;
    b.coll = kind;
    b.coll_id = 0;
    b.root = root;
    b.local_ts = b.true_ts = 1.0 + 0.001 * r;
    Event e = b;
    e.type = EventType::CollEnd;
    e.local_ts = e.true_ts = 2.0 + 0.001 * r;
    t.events(r).push_back(b);
    t.events(r).push_back(e);
  }
  return t;
}

TEST(LogicalMessages, BcastIsOneToN) {
  Trace t = coll_trace(4, CollectiveKind::Bcast, 1);
  auto msgs = derive_logical_messages(t);
  // root begin -> each non-root end: 3 messages.
  ASSERT_EQ(msgs.size(), 3u);
  for (const auto& m : msgs) {
    EXPECT_EQ(m.send.proc, 1);
    EXPECT_NE(m.recv.proc, 1);
    EXPECT_EQ(t.at(m.send).type, EventType::CollBegin);
    EXPECT_EQ(t.at(m.recv).type, EventType::CollEnd);
  }
}

TEST(LogicalMessages, ReduceIsNToOne) {
  Trace t = coll_trace(4, CollectiveKind::Reduce, 2);
  auto msgs = derive_logical_messages(t);
  ASSERT_EQ(msgs.size(), 3u);
  for (const auto& m : msgs) {
    EXPECT_NE(m.send.proc, 2);
    EXPECT_EQ(m.recv.proc, 2);
  }
}

TEST(LogicalMessages, BarrierIsNToN) {
  Trace t = coll_trace(4, CollectiveKind::Barrier, 0);
  auto msgs = derive_logical_messages(t);
  // n*(n-1) ordered pairs.
  EXPECT_EQ(msgs.size(), 12u);
}

TEST(LogicalMessages, AllreduceIsNToN) {
  Trace t = coll_trace(3, CollectiveKind::Allreduce, 0);
  EXPECT_EQ(derive_logical_messages(t).size(), 6u);
}

TEST(LogicalMessages, GatherScatterFlavors) {
  EXPECT_EQ(derive_logical_messages(coll_trace(5, CollectiveKind::Gather, 0)).size(), 4u);
  EXPECT_EQ(derive_logical_messages(coll_trace(5, CollectiveKind::Scatter, 0)).size(), 4u);
}

TEST(LogicalMessages, MultipleInstancesAccumulate) {
  Trace t = coll_trace(3, CollectiveKind::Barrier, 0);
  // Add a second instance.
  for (Rank r = 0; r < 3; ++r) {
    Event b;
    b.type = EventType::CollBegin;
    b.coll = CollectiveKind::Bcast;
    b.coll_id = 1;
    b.root = 0;
    b.local_ts = b.true_ts = 3.0;
    Event e = b;
    e.type = EventType::CollEnd;
    e.local_ts = e.true_ts = 4.0;
    t.events(r).push_back(b);
    t.events(r).push_back(e);
  }
  auto msgs = derive_logical_messages(t);
  EXPECT_EQ(msgs.size(), 6u + 2u);
}

TEST(LogicalMessages, DuplicateRootEventsUseFirstMatch) {
  // Malformed instances can list the root rank twice.  Both flavours must
  // pick the *first* recorded root event as the representative — the same
  // rule the streaming scanner applies — not the last one.
  Trace bcast = coll_trace(3, CollectiveKind::Bcast, 0);
  Event dup = bcast.events(0)[0];  // root begin at t=1.0
  dup.local_ts = dup.true_ts = 0.5;
  bcast.events(0).push_back(dup);  // later in trace order, earlier timestamp
  bcast.events(0).push_back(bcast.events(0)[1]);  // balance ends: not partial
  const auto one_to_n = derive_logical_messages(bcast);
  ASSERT_EQ(one_to_n.size(), 2u);
  for (const auto& lm : one_to_n) {
    EXPECT_EQ(lm.send.proc, 0);
    EXPECT_EQ(lm.send.index, 0u) << "root begin must be the first recorded one";
  }

  Trace reduce = coll_trace(3, CollectiveKind::Reduce, 0);
  Event end_dup = reduce.events(0)[1];  // root end at index 1
  end_dup.local_ts = end_dup.true_ts = 9.0;
  reduce.events(0).push_back(end_dup);
  reduce.events(0).push_back(reduce.events(0)[0]);  // balance begins
  const auto n_to_one = derive_logical_messages(reduce);
  ASSERT_EQ(n_to_one.size(), 2u);
  for (const auto& lm : n_to_one) {
    EXPECT_EQ(lm.recv.proc, 0);
    EXPECT_EQ(lm.recv.index, 1u) << "root end must be the first recorded one";
  }
}

TEST(LogicalMessages, EmptyTraceGivesNone) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {1e-6, 2e-6, 4e-6}, "test");
  EXPECT_TRUE(derive_logical_messages(t).empty());
}

TEST(LogicalMessages, CollIdPropagated) {
  Trace t = coll_trace(3, CollectiveKind::Allreduce, 0);
  for (const auto& m : derive_logical_messages(t)) {
    EXPECT_EQ(m.coll_id, 0);
  }
}

}  // namespace
}  // namespace chronosync
