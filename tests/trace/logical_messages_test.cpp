#include "trace/logical_messages.hpp"

#include <gtest/gtest.h>

#include "topology/cluster.hpp"

namespace chronosync {
namespace {

/// Builds a trace with one collective instance over `ranks` ranks.
Trace coll_trace(int ranks, CollectiveKind kind, Rank root) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), ranks), {0.47e-6, 0.86e-6, 4.29e-6},
          "test");
  for (Rank r = 0; r < ranks; ++r) {
    Event b;
    b.type = EventType::CollBegin;
    b.coll = kind;
    b.coll_id = 0;
    b.root = root;
    b.local_ts = b.true_ts = 1.0 + 0.001 * r;
    Event e = b;
    e.type = EventType::CollEnd;
    e.local_ts = e.true_ts = 2.0 + 0.001 * r;
    t.events(r).push_back(b);
    t.events(r).push_back(e);
  }
  return t;
}

TEST(LogicalMessages, BcastIsOneToN) {
  Trace t = coll_trace(4, CollectiveKind::Bcast, 1);
  auto msgs = derive_logical_messages(t);
  // root begin -> each non-root end: 3 messages.
  ASSERT_EQ(msgs.size(), 3u);
  for (const auto& m : msgs) {
    EXPECT_EQ(m.send.proc, 1);
    EXPECT_NE(m.recv.proc, 1);
    EXPECT_EQ(t.at(m.send).type, EventType::CollBegin);
    EXPECT_EQ(t.at(m.recv).type, EventType::CollEnd);
  }
}

TEST(LogicalMessages, ReduceIsNToOne) {
  Trace t = coll_trace(4, CollectiveKind::Reduce, 2);
  auto msgs = derive_logical_messages(t);
  ASSERT_EQ(msgs.size(), 3u);
  for (const auto& m : msgs) {
    EXPECT_NE(m.send.proc, 2);
    EXPECT_EQ(m.recv.proc, 2);
  }
}

TEST(LogicalMessages, BarrierIsNToN) {
  Trace t = coll_trace(4, CollectiveKind::Barrier, 0);
  auto msgs = derive_logical_messages(t);
  // n*(n-1) ordered pairs.
  EXPECT_EQ(msgs.size(), 12u);
}

TEST(LogicalMessages, AllreduceIsNToN) {
  Trace t = coll_trace(3, CollectiveKind::Allreduce, 0);
  EXPECT_EQ(derive_logical_messages(t).size(), 6u);
}

TEST(LogicalMessages, GatherScatterFlavors) {
  EXPECT_EQ(derive_logical_messages(coll_trace(5, CollectiveKind::Gather, 0)).size(), 4u);
  EXPECT_EQ(derive_logical_messages(coll_trace(5, CollectiveKind::Scatter, 0)).size(), 4u);
}

TEST(LogicalMessages, MultipleInstancesAccumulate) {
  Trace t = coll_trace(3, CollectiveKind::Barrier, 0);
  // Add a second instance.
  for (Rank r = 0; r < 3; ++r) {
    Event b;
    b.type = EventType::CollBegin;
    b.coll = CollectiveKind::Bcast;
    b.coll_id = 1;
    b.root = 0;
    b.local_ts = b.true_ts = 3.0;
    Event e = b;
    e.type = EventType::CollEnd;
    e.local_ts = e.true_ts = 4.0;
    t.events(r).push_back(b);
    t.events(r).push_back(e);
  }
  auto msgs = derive_logical_messages(t);
  EXPECT_EQ(msgs.size(), 6u + 2u);
}

TEST(LogicalMessages, EmptyTraceGivesNone) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {1e-6, 2e-6, 4e-6}, "test");
  EXPECT_TRUE(derive_logical_messages(t).empty());
}

TEST(LogicalMessages, CollIdPropagated) {
  Trace t = coll_trace(3, CollectiveKind::Allreduce, 0);
  for (const auto& m : derive_logical_messages(t)) {
    EXPECT_EQ(m.coll_id, 0);
  }
}

}  // namespace
}  // namespace chronosync
