// Hardening regressions for the v1 binary reader: truncation at every byte
// (hence every section boundary), forged count/length fields that used to
// trigger unchecked huge allocations, and non-seekable streams where the
// total size cannot be validated up front.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <streambuf>

#include "topology/cluster.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_io_error.hpp"

namespace chronosync {
namespace {

Trace sample_trace() {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 3), {0.47e-6, 0.86e-6, 4.29e-6},
          "intel-tsc");
  t.intern_region("main");
  t.intern_region("halo");
  Event s;
  s.type = EventType::Send;
  s.peer = 1;
  s.tag = 5;
  s.bytes = 4096;
  s.msg_id = 77;
  s.local_ts = 1.25;
  s.true_ts = 1.24;
  t.events(0).push_back(s);
  Event r = s;
  r.type = EventType::Recv;
  r.peer = 0;
  r.local_ts = 1.26;
  t.events(1).push_back(r);
  Event c;
  c.type = EventType::CollBegin;
  c.coll = CollectiveKind::Allreduce;
  c.coll_id = 3;
  c.root = 0;
  c.local_ts = 2.0;
  c.true_ts = 2.0;
  t.events(2).push_back(c);
  return t;
}

std::string v1_blob() {
  std::stringstream buf;
  write_trace(sample_trace(), buf);
  return buf.str();
}

// v1 layout offsets of the sample trace (timer "intel-tsc", 3 ranks,
// regions "main"/"halo", one 68-byte event per rank).
constexpr std::size_t kOffTimerLen = 8;
constexpr std::size_t kOffRankCount = 12 + 9;                            // 21
constexpr std::size_t kOffRegionCount = kOffRankCount + 4 + 3 * 12 + 24; // 85
constexpr std::size_t kOffRegion0Len = kOffRegionCount + 4;              // 89
constexpr std::size_t kOffRank0EventCount = kOffRegion0Len + 8 + 8;      // 105

std::string patch_u32(std::string blob, std::size_t off, std::uint32_t v) {
  std::memcpy(blob.data() + off, &v, 4);
  return blob;
}

std::string patch_u64(std::string blob, std::size_t off, std::uint64_t v) {
  std::memcpy(blob.data() + off, &v, 8);
  return blob;
}

/// A streambuf that refuses to seek: ByteSource cannot learn the stream size
/// and must fall back to incremental, allocation-bounded reads.
class UnseekableStringBuf : public std::streambuf {
 public:
  explicit UnseekableStringBuf(std::string data) : data_(std::move(data)) {}

 protected:
  int_type underflow() override {
    if (pos_ >= data_.size()) return traits_type::eof();
    const std::size_t n = std::min<std::size_t>(sizeof buf_, data_.size() - pos_);
    std::memcpy(buf_, data_.data() + pos_, n);
    setg(buf_, buf_, buf_ + n);
    pos_ += n;
    return traits_type::to_int_type(buf_[0]);
  }

 private:
  std::string data_;
  std::size_t pos_ = 0;
  char buf_[64];
};

TEST(TraceIoHardening, SanityOffsetsMatchFormat) {
  // If the sample trace or the v1 layout changes, the patch offsets above
  // must be revisited; this guards them.
  const std::string blob = v1_blob();
  ASSERT_EQ(blob.size(), kOffRank0EventCount + 3 * 8 + 3 * 68);
  std::uint32_t timer_len;
  std::memcpy(&timer_len, blob.data() + kOffTimerLen, 4);
  ASSERT_EQ(timer_len, 9u);
  std::uint32_t nranks;
  std::memcpy(&nranks, blob.data() + kOffRankCount, 4);
  ASSERT_EQ(nranks, 3u);
  std::uint32_t nregions;
  std::memcpy(&nregions, blob.data() + kOffRegionCount, 4);
  ASSERT_EQ(nregions, 2u);
}

TEST(TraceIoHardening, TruncationAtEveryByteIsRejected) {
  // Covers every section boundary: header, timer, placement, latencies,
  // region table, per-rank counts, and event payloads.
  const std::string blob = v1_blob();
  for (std::size_t n = 0; n < blob.size(); ++n) {
    std::stringstream cut(blob.substr(0, n));
    EXPECT_THROW(read_trace(cut), TraceIoError) << "prefix length " << n;
  }
}

TEST(TraceIoHardening, ForgedTimerLengthIsRejected) {
  std::stringstream in(patch_u32(v1_blob(), kOffTimerLen, 0xFFFFFFFFu));
  try {
    read_trace(in);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Truncated);
  }
}

TEST(TraceIoHardening, ForgedRankCountIsRejected) {
  std::stringstream in(patch_u32(v1_blob(), kOffRankCount, 0x7FFFFFFFu));
  try {
    read_trace(in);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Truncated);
  }
}

TEST(TraceIoHardening, ForgedRegionCountIsRejected) {
  std::stringstream in(patch_u32(v1_blob(), kOffRegionCount, 0x40000000u));
  EXPECT_THROW(read_trace(in), TraceIoError);
}

TEST(TraceIoHardening, ForgedRegionNameLengthIsRejected) {
  std::stringstream in(patch_u32(v1_blob(), kOffRegion0Len, 0xFFFFFF00u));
  EXPECT_THROW(read_trace(in), TraceIoError);
}

TEST(TraceIoHardening, ForgedEventCountIsRejected) {
  // A count of 2^32 events would previously resize() ~350 GB up front.
  std::stringstream in(patch_u64(v1_blob(), kOffRank0EventCount, 1ull << 32));
  try {
    read_trace(in);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Truncated);
  }
}

TEST(TraceIoHardening, AbsurdEventCountIsRejected) {
  // Large enough that count * event_size overflows 64 bits.
  std::stringstream in(patch_u64(v1_blob(), kOffRank0EventCount, ~0ull));
  try {
    read_trace(in);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Malformed);
  }
}

TEST(TraceIoHardening, InvalidEventTypeIsRejected) {
  // First u32 of rank 0's first event record.
  std::stringstream in(patch_u32(v1_blob(), kOffRank0EventCount + 8, 250u));
  try {
    read_trace(in);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::Malformed);
  }
}

TEST(TraceIoHardening, UnseekableStreamParsesValidTrace) {
  UnseekableStringBuf sb(v1_blob());
  std::istream in(&sb);
  const Trace u = read_trace(in);
  EXPECT_EQ(u.ranks(), 3);
  EXPECT_EQ(u.total_events(), 3u);
}

TEST(TraceIoHardening, UnseekableStreamParsesValidV2Trace) {
  std::stringstream buf;
  write_trace_v2(sample_trace(), buf);
  UnseekableStringBuf sb(buf.str());
  std::istream in(&sb);
  const Trace u = read_trace(in);
  EXPECT_EQ(u.total_events(), 3u);
}

TEST(TraceIoHardening, UnseekableStreamRejectsForgedCountsQuickly) {
  // Without a known stream size the reader cannot pre-validate, but reads
  // stay incremental: a forged giant count fails at EOF instead of
  // triggering a giant allocation.
  {
    UnseekableStringBuf sb(patch_u32(v1_blob(), kOffTimerLen, 0xFFFFFFFFu));
    std::istream in(&sb);
    EXPECT_THROW(read_trace(in), TraceIoError);
  }
  {
    UnseekableStringBuf sb(patch_u64(v1_blob(), kOffRank0EventCount, 1ull << 40));
    std::istream in(&sb);
    EXPECT_THROW(read_trace(in), TraceIoError);
  }
}

TEST(TraceIoHardening, UnknownVersionIsRejected) {
  std::stringstream in(patch_u32(v1_blob(), 4, 99u));
  try {
    read_trace(in);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.kind(), TraceIoErrorKind::BadVersion);
  }
}

}  // namespace
}  // namespace chronosync
