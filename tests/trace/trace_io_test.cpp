#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Trace sample_trace() {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 3), {0.47e-6, 0.86e-6, 4.29e-6},
          "intel-tsc");
  t.intern_region("main");
  t.intern_region("halo");
  Event s;
  s.type = EventType::Send;
  s.peer = 1;
  s.tag = 5;
  s.bytes = 4096;
  s.msg_id = 77;
  s.local_ts = 1.25;
  s.true_ts = 1.24;
  t.events(0).push_back(s);
  Event r = s;
  r.type = EventType::Recv;
  r.peer = 0;
  r.local_ts = 1.26;
  t.events(1).push_back(r);
  Event c;
  c.type = EventType::CollBegin;
  c.coll = CollectiveKind::Allreduce;
  c.coll_id = 3;
  c.root = 0;
  c.local_ts = 2.0;
  c.true_ts = 2.0;
  t.events(2).push_back(c);
  return t;
}

TEST(TraceIo, RoundTripExact) {
  Trace t = sample_trace();
  std::stringstream buf;
  write_trace(t, buf);
  Trace u = read_trace(buf);

  EXPECT_EQ(u.ranks(), t.ranks());
  EXPECT_EQ(u.timer_name(), "intel-tsc");
  EXPECT_EQ(u.total_events(), t.total_events());
  EXPECT_DOUBLE_EQ(u.min_latency(0, 1), t.min_latency(0, 1));
  EXPECT_EQ(u.regions().size(), 2u);
  EXPECT_EQ(u.region_name(1), "halo");

  const Event& s = u.events(0)[0];
  EXPECT_EQ(s.type, EventType::Send);
  EXPECT_EQ(s.peer, 1);
  EXPECT_EQ(s.tag, 5);
  EXPECT_EQ(s.bytes, 4096u);
  EXPECT_EQ(s.msg_id, 77);
  EXPECT_DOUBLE_EQ(s.local_ts, 1.25);
  EXPECT_DOUBLE_EQ(s.true_ts, 1.24);

  const Event& c = u.events(2)[0];
  EXPECT_EQ(c.coll, CollectiveKind::Allreduce);
  EXPECT_EQ(c.coll_id, 3);
  EXPECT_EQ(c.root, 0);
}

TEST(TraceIo, PlacementSurvives) {
  Trace t = sample_trace();
  std::stringstream buf;
  write_trace(t, buf);
  Trace u = read_trace(buf);
  for (Rank r = 0; r < 3; ++r) {
    EXPECT_TRUE(u.placement().location(r) == t.placement().location(r));
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/cs_trace.bin";
  Trace t = sample_trace();
  write_trace_file(t, path);
  Trace u = read_trace_file(path);
  EXPECT_EQ(u.total_events(), t.total_events());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream buf("this is not a trace");
  EXPECT_THROW(read_trace(buf), std::invalid_argument);
}

TEST(TraceIo, RejectsTruncated) {
  Trace t = sample_trace();
  std::stringstream buf;
  write_trace(t, buf);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data);
  EXPECT_THROW(read_trace(cut), std::invalid_argument);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/path/trace.bin"), std::invalid_argument);
}

TEST(TraceIo, DumpMentionsEvents) {
  Trace t = sample_trace();
  const std::string s = dump_trace(t);
  EXPECT_NE(s.find("SEND"), std::string::npos);
  EXPECT_NE(s.find("RECV"), std::string::npos);
  EXPECT_NE(s.find("allreduce"), std::string::npos);
  EXPECT_NE(s.find("intel-tsc"), std::string::npos);
}

}  // namespace
}  // namespace chronosync
