#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Trace make_trace(int ranks) {
  return Trace(pinning::inter_node(clusters::xeon_rwth(), ranks),
               {0.47e-6, 0.86e-6, 4.29e-6}, "test-timer");
}

Event send_event(Rank dst, std::int64_t id, Time ts) {
  Event e;
  e.type = EventType::Send;
  e.peer = dst;
  e.msg_id = id;
  e.local_ts = ts;
  e.true_ts = ts;
  e.bytes = 64;
  e.tag = 1;
  return e;
}

Event recv_event(Rank src, std::int64_t id, Time ts) {
  Event e;
  e.type = EventType::Recv;
  e.peer = src;
  e.msg_id = id;
  e.local_ts = ts;
  e.true_ts = ts;
  e.bytes = 64;
  e.tag = 1;
  return e;
}

TEST(Trace, MinLatencyByPlacement) {
  Trace t = make_trace(2);
  EXPECT_DOUBLE_EQ(t.min_latency(0, 1), 4.29e-6);
  EXPECT_DOUBLE_EQ(t.min_latency(CommDomain::SameChip), 0.47e-6);
}

TEST(Trace, RegionInterning) {
  Trace t = make_trace(1);
  const auto a = t.intern_region("main");
  const auto b = t.intern_region("loop");
  const auto a2 = t.intern_region("main");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.region_name(a), "main");
  EXPECT_THROW(t.region_name(99), std::invalid_argument);
}

TEST(Trace, MessageMatchingByMsgId) {
  Trace t = make_trace(2);
  t.events(0).push_back(send_event(1, 100, 1.0));
  t.events(1).push_back(recv_event(0, 100, 1.1));
  auto msgs = t.match_messages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].send.proc, 0);
  EXPECT_EQ(msgs[0].recv.proc, 1);
  EXPECT_EQ(msgs[0].bytes, 64u);
}

TEST(Trace, HalfMatchedMessagesDropped) {
  Trace t = make_trace(2);
  t.events(0).push_back(send_event(1, 100, 1.0));  // recv outside window
  t.events(1).push_back(recv_event(0, 200, 1.1));  // send outside window
  EXPECT_TRUE(t.match_messages().empty());
}

TEST(Trace, DuplicateMsgIdsMatchOnline) {
  // Malformed traces can reuse a msg_id.  Matching is online over rank-major
  // order — the pair retires the moment its second endpoint arrives, and the
  // later duplicate opens a fresh (here half-open, dropped) entry — the same
  // rule the streamed scanner applies, so the two pipelines stay equal.
  Trace t = make_trace(3);
  t.events(0).push_back(send_event(1, 100, 1.0));
  t.events(1).push_back(recv_event(0, 100, 2.0));  // completes the pair
  t.events(2).push_back(recv_event(0, 100, 0.5));  // duplicate after retirement
  auto msgs = t.match_messages();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].recv.proc, 1) << "pair must keep the endpoint that completed it";

  // While still half-open, a duplicate endpoint overwrites (last wins): the
  // second send replaces the first before any receive arrives.
  Trace u = make_trace(2);
  u.events(0).push_back(send_event(1, 7, 1.0));
  u.events(0).push_back(send_event(1, 7, 3.0));
  u.events(1).push_back(recv_event(0, 7, 2.0));
  auto dup = u.match_messages();
  ASSERT_EQ(dup.size(), 1u);
  EXPECT_EQ(dup[0].send.index, 1u);
}

TEST(Trace, CollectiveGrouping) {
  Trace t = make_trace(2);
  for (Rank r = 0; r < 2; ++r) {
    Event b;
    b.type = EventType::CollBegin;
    b.coll = CollectiveKind::Allreduce;
    b.coll_id = 7;
    b.local_ts = b.true_ts = 1.0;
    Event e = b;
    e.type = EventType::CollEnd;
    e.local_ts = e.true_ts = 1.1;
    t.events(r).push_back(b);
    t.events(r).push_back(e);
  }
  auto insts = t.collect_collectives();
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0].coll_id, 7);
  EXPECT_EQ(insts[0].begins.size(), 2u);
}

TEST(Trace, PartialCollectiveInstancesSkipped) {
  Trace t = make_trace(2);
  Event b;
  b.type = EventType::CollBegin;
  b.coll = CollectiveKind::Barrier;
  b.coll_id = 1;
  t.events(0).push_back(b);  // no matching end anywhere
  EXPECT_TRUE(t.collect_collectives().empty());
}

TEST(Trace, ValidateAcceptsMonotone) {
  Trace t = make_trace(1);
  t.events(0).push_back(send_event(0, 1, 1.0));
  t.events(0).push_back(send_event(0, 2, 2.0));
  EXPECT_NO_THROW(t.validate());
}

TEST(Trace, ValidateRejectsBackwardLocalTime) {
  Trace t = make_trace(1);
  t.events(0).push_back(send_event(0, 1, 2.0));
  t.events(0).push_back(send_event(0, 2, 1.0));
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Trace, TotalEvents) {
  Trace t = make_trace(2);
  t.events(0).push_back(send_event(1, 1, 1.0));
  t.events(1).push_back(recv_event(0, 1, 1.1));
  t.events(1).push_back(recv_event(0, 2, 1.2));
  EXPECT_EQ(t.total_events(), 3u);
}

TEST(TimestampArray, FromLocalAndTruth) {
  Trace t = make_trace(1);
  Event e = send_event(0, 1, 5.0);
  e.true_ts = 4.5;
  t.events(0).push_back(e);
  auto local = TimestampArray::from_local(t);
  auto truth = TimestampArray::from_truth(t);
  EXPECT_DOUBLE_EQ(local.at({0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(truth.at({0, 0}), 4.5);
}

TEST(TimestampArray, MutationDoesNotTouchTrace) {
  Trace t = make_trace(1);
  t.events(0).push_back(send_event(0, 1, 5.0));
  auto ts = TimestampArray::from_local(t);
  ts.at({0, 0}) = 9.0;
  EXPECT_DOUBLE_EQ(t.events(0)[0].local_ts, 5.0);
  EXPECT_DOUBLE_EQ(ts.at({0, 0}), 9.0);
}

TEST(TimestampArray, RangeChecks) {
  Trace t = make_trace(1);
  auto ts = TimestampArray::from_local(t);
  EXPECT_THROW(ts.at({0, 0}), std::invalid_argument);
  EXPECT_THROW(ts.at({1, 0}), std::invalid_argument);
}

TEST(EventType, ToStringCoversAll) {
  EXPECT_EQ(to_string(EventType::Send), "SEND");
  EXPECT_EQ(to_string(EventType::BarrierExit), "BARR_EXIT");
  EXPECT_EQ(to_string(CollectiveKind::Allreduce), "allreduce");
}

TEST(Flavor, Mapping) {
  EXPECT_EQ(flavor_of(CollectiveKind::Bcast), CollectiveFlavor::OneToN);
  EXPECT_EQ(flavor_of(CollectiveKind::Scatter), CollectiveFlavor::OneToN);
  EXPECT_EQ(flavor_of(CollectiveKind::Reduce), CollectiveFlavor::NToOne);
  EXPECT_EQ(flavor_of(CollectiveKind::Gather), CollectiveFlavor::NToOne);
  EXPECT_EQ(flavor_of(CollectiveKind::Barrier), CollectiveFlavor::NToN);
  EXPECT_EQ(flavor_of(CollectiveKind::Alltoall), CollectiveFlavor::NToN);
}

}  // namespace
}  // namespace chronosync
