#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include "topology/cluster.hpp"

namespace chronosync {
namespace {

Trace two_rank_trace(Time recv_ts) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6}, "test");
  Event s;
  s.type = EventType::Send;
  s.peer = 1;
  s.msg_id = 0;
  s.local_ts = s.true_ts = 1.0;
  t.events(0).push_back(s);
  Event r = s;
  r.type = EventType::Recv;
  r.peer = 0;
  r.local_ts = r.true_ts = recv_ts;
  t.events(1).push_back(r);
  return t;
}

TEST(Timeline, ContainsLanesAndGlyphs) {
  Trace t = two_rank_trace(1.5);
  const std::string out = render_timeline(t, TimestampArray::from_local(t));
  EXPECT_NE(out.find("rank   0"), std::string::npos);
  EXPECT_NE(out.find("rank   1"), std::string::npos);
  EXPECT_NE(out.find('S'), std::string::npos);
  EXPECT_NE(out.find('R'), std::string::npos);
}

TEST(Timeline, FlagsBackwardArrows) {
  Trace t = two_rank_trace(0.5);  // reversed message
  const std::string out = render_timeline(t, TimestampArray::from_local(t));
  EXPECT_NE(out.find("ARROW POINTS BACKWARD"), std::string::npos);
  EXPECT_NE(out.find("1 pointing backward"), std::string::npos);
}

TEST(Timeline, ConsistentMessageNotFlagged) {
  Trace t = two_rank_trace(1.5);
  const std::string out = render_timeline(t, TimestampArray::from_local(t));
  EXPECT_EQ(out.find("ARROW POINTS BACKWARD"), std::string::npos);
  EXPECT_NE(out.find("0 pointing backward"), std::string::npos);
}

TEST(Timeline, WindowRestriction) {
  Trace t = two_rank_trace(1.5);
  TimelineOptions opt;
  opt.start = 10.0;
  opt.end = 20.0;
  const std::string out = render_timeline(t, TimestampArray::from_local(t), opt);
  // No events inside the window: lanes stay empty.
  EXPECT_EQ(out.find('S'), std::string::npos);
}

TEST(Timeline, EmptyTraceRenders) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6}, "test");
  const std::string out = render_timeline(t, TimestampArray::from_local(t));
  EXPECT_NE(out.find("rank   0"), std::string::npos);
}

TEST(Timeline, MessageTableCanBeDisabled) {
  Trace t = two_rank_trace(0.5);
  TimelineOptions opt;
  opt.max_messages = 0;
  const std::string out = render_timeline(t, TimestampArray::from_local(t), opt);
  EXPECT_EQ(out.find("messages in window"), std::string::npos);
}

TEST(Timeline, NarrowWidthRejected) {
  Trace t = two_rank_trace(1.5);
  TimelineOptions opt;
  opt.width = 5;
  EXPECT_THROW(render_timeline(t, TimestampArray::from_local(t), opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace chronosync
