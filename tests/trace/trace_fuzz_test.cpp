// Deterministic mutation corpus for the trace readers.  Seeds a set of valid
// blobs in all three formats, then applies structured mutations — single-bit
// flips, truncations, duplicated/removed/reordered chunks, corrupted CRC
// fields, and plain garbage — and asserts the readers ALWAYS fail with a
// typed TraceIoError (v2: every mutation is detectable thanks to the chunk
// and file checksums) or, for the unchecksummed v1/text formats, either parse
// successfully or throw TraceIoError.  No mutation may crash, abort, or throw
// anything else; the suite is also run under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "../testutil/random_trace.hpp"
#include "common/rng.hpp"
#include "trace/otf_text.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_io_error.hpp"

namespace chronosync {
namespace {

using testutil::random_trace;

enum class Outcome { Parsed, IoError, WrongException };

template <typename ReadFn>
Outcome feed(const std::string& blob, ReadFn&& read) {
  std::stringstream in(blob);
  try {
    read(in);
    return Outcome::Parsed;
  } catch (const TraceIoError&) {
    return Outcome::IoError;
  } catch (...) {
    return Outcome::WrongException;
  }
}

Outcome feed_v2(const std::string& blob) {
  return feed(blob, [](std::istream& in) { read_trace_v2(in); });
}

Outcome feed_v1(const std::string& blob) {
  return feed(blob, [](std::istream& in) { read_trace(in); });
}

Outcome feed_text(const std::string& blob) {
  return feed(blob, [](std::istream& in) { read_text_trace(in); });
}

/// v2 is fully checksummed: every mutation must yield a TraceIoError.
void expect_v2_rejected(const std::string& blob, const std::string& context) {
  const Outcome got = feed_v2(blob);
  if (got == Outcome::Parsed) {
    ADD_FAILURE() << "v2 reader accepted a mutated blob: " << context;
  } else if (got == Outcome::WrongException) {
    ADD_FAILURE() << "v2 reader threw something other than TraceIoError: " << context;
  }
}

/// v1/text carry no checksums, so a mutation may produce a different but
/// well-formed blob; the reader must still never crash or throw a foreign
/// exception type.
template <typename FeedFn>
void expect_no_crash(FeedFn&& feed_fn, const std::string& blob, const std::string& context) {
  if (feed_fn(blob) == Outcome::WrongException) {
    ADD_FAILURE() << "reader threw something other than TraceIoError: " << context;
  }
}

struct ChunkSpan {
  std::size_t off;   // offset of the kind byte
  std::size_t size;  // kind + len field + payload + crc
  char kind;
};

/// Walks the chunk framing of a well-formed v2 blob.
std::vector<ChunkSpan> chunk_spans(const std::string& blob) {
  std::vector<ChunkSpan> spans;
  std::size_t pos = 8;  // skip magic + version
  while (pos + 5 <= blob.size()) {
    std::uint32_t len;
    std::memcpy(&len, blob.data() + pos + 1, 4);
    const std::size_t total = 1 + 4 + static_cast<std::size_t>(len) + 4;
    spans.push_back({pos, total, blob[pos]});
    pos += total;
  }
  EXPECT_EQ(pos, blob.size()) << "seed blob has broken framing";
  return spans;
}

struct Corpus {
  std::string v1;
  std::string v2;
  std::string text;
};

Corpus make_corpus(std::uint64_t seed, bool extreme) {
  const Trace t = random_trace(seed, extreme);
  Corpus c;
  std::stringstream b1;
  std::stringstream b2;
  std::stringstream bt;
  write_trace(t, b1);
  write_trace_v2(t, b2, /*events_per_chunk=*/5);  // many chunk boundaries
  write_text_trace(t, bt);
  c.v1 = b1.str();
  c.v2 = b2.str();
  c.text = bt.str();
  return c;
}

constexpr std::uint64_t kSeeds[] = {3, 17, 42};

TEST(TraceFuzz, SeedBlobsParseCleanly) {
  for (std::uint64_t seed : kSeeds) {
    const Corpus c = make_corpus(seed, seed % 2 == 0);
    EXPECT_EQ(feed_v1(c.v1), Outcome::Parsed);
    EXPECT_EQ(feed_v2(c.v2), Outcome::Parsed);
    EXPECT_EQ(feed_text(c.text), Outcome::Parsed);
  }
}

TEST(TraceFuzz, BitFlips) {
  for (std::uint64_t seed : kSeeds) {
    const Corpus c = make_corpus(seed, seed % 2 == 0);
    Rng rng(seed * 7919 + 1);
    for (int i = 0; i < 1200; ++i) {
      const std::size_t byte = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(c.v2.size()) - 1));
      const int bit = static_cast<int>(rng.uniform_int(0, 7));
      std::string m = c.v2;
      m[byte] = static_cast<char>(m[byte] ^ (1 << bit));
      expect_v2_rejected(m, "v2 flip byte " + std::to_string(byte) + " bit " +
                                std::to_string(bit) + " seed " + std::to_string(seed));
    }
    for (int i = 0; i < 600; ++i) {
      const std::size_t byte = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(c.v1.size()) - 1));
      const int bit = static_cast<int>(rng.uniform_int(0, 7));
      std::string m = c.v1;
      m[byte] = static_cast<char>(m[byte] ^ (1 << bit));
      expect_no_crash(feed_v1, m, "v1 flip byte " + std::to_string(byte) + " bit " +
                                      std::to_string(bit) + " seed " + std::to_string(seed));
    }
    for (int i = 0; i < 600; ++i) {
      const std::size_t byte = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(c.text.size()) - 1));
      const int bit = static_cast<int>(rng.uniform_int(0, 7));
      std::string m = c.text;
      m[byte] = static_cast<char>(m[byte] ^ (1 << bit));
      expect_no_crash(feed_text, m, "text flip byte " + std::to_string(byte) + " bit " +
                                        std::to_string(bit) + " seed " + std::to_string(seed));
    }
  }
}

TEST(TraceFuzz, Truncations) {
  for (std::uint64_t seed : kSeeds) {
    const Corpus c = make_corpus(seed, false);
    Rng rng(seed * 104729 + 2);
    // v2 and v1: every strict prefix must throw; sample plus hit both ends.
    for (int i = 0; i < 400; ++i) {
      const std::size_t n = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(c.v2.size()) - 1));
      expect_v2_rejected(c.v2.substr(0, n),
                         "v2 prefix " + std::to_string(n) + " seed " + std::to_string(seed));
    }
    for (int i = 0; i < 400; ++i) {
      const std::size_t n = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(c.v1.size()) - 1));
      const Outcome got = feed_v1(c.v1.substr(0, n));
      EXPECT_EQ(got, Outcome::IoError)
          << "v1 prefix " << n << " seed " << seed << " was not rejected";
    }
    // Text may truncate exactly at a line boundary, which legitimately
    // parses; only the no-crash guarantee applies.
    for (int i = 0; i < 300; ++i) {
      const std::size_t n = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(c.text.size()) - 1));
      expect_no_crash(feed_text, c.text.substr(0, n),
                      "text prefix " + std::to_string(n) + " seed " + std::to_string(seed));
    }
  }
}

TEST(TraceFuzz, DuplicatedChunks) {
  for (std::uint64_t seed : kSeeds) {
    const Corpus c = make_corpus(seed, false);
    const auto spans = chunk_spans(c.v2);
    for (const ChunkSpan& s : spans) {
      // A duplicated chunk is CRC-valid, so only the sequence numbers, the
      // footer counters, and the whole-file CRC can catch it.
      std::string m = c.v2;
      m.insert(s.off + s.size, c.v2.substr(s.off, s.size));
      expect_v2_rejected(m, std::string("duplicated '") + s.kind + "' chunk at " +
                                std::to_string(s.off) + " seed " + std::to_string(seed));
    }
  }
}

TEST(TraceFuzz, RemovedChunks) {
  for (std::uint64_t seed : kSeeds) {
    const Corpus c = make_corpus(seed, false);
    const auto spans = chunk_spans(c.v2);
    for (const ChunkSpan& s : spans) {
      std::string m = c.v2;
      m.erase(s.off, s.size);
      expect_v2_rejected(m, std::string("removed '") + s.kind + "' chunk at " +
                                std::to_string(s.off) + " seed " + std::to_string(seed));
    }
  }
}

TEST(TraceFuzz, ReorderedChunks) {
  for (std::uint64_t seed : kSeeds) {
    const Corpus c = make_corpus(seed, false);
    const auto spans = chunk_spans(c.v2);
    for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
      const ChunkSpan& a = spans[i];
      const ChunkSpan& b = spans[i + 1];
      std::string m = c.v2.substr(0, a.off) + c.v2.substr(b.off, b.size) +
                      c.v2.substr(a.off, a.size) + c.v2.substr(b.off + b.size);
      expect_v2_rejected(m, "swapped chunks " + std::to_string(i) + "/" +
                                std::to_string(i + 1) + " seed " + std::to_string(seed));
    }
  }
}

TEST(TraceFuzz, CorruptedChunkCrcFields) {
  for (std::uint64_t seed : kSeeds) {
    const Corpus c = make_corpus(seed, false);
    for (const ChunkSpan& s : chunk_spans(c.v2)) {
      std::string m = c.v2;
      // Invert the entire trailing CRC field of the chunk.
      for (std::size_t b = s.off + s.size - 4; b < s.off + s.size; ++b) {
        m[b] = static_cast<char>(~m[b]);
      }
      expect_v2_rejected(m, std::string("corrupted CRC of '") + s.kind + "' chunk at " +
                                std::to_string(s.off) + " seed " + std::to_string(seed));
    }
  }
}

TEST(TraceFuzz, RandomGarbage) {
  Rng rng(20260806);
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 4096));
    std::string blob(n, '\0');
    for (auto& ch : blob) ch = static_cast<char>(rng.uniform_int(0, 255));
    const std::string context = "garbage #" + std::to_string(i);
    EXPECT_NE(feed_v2(blob), Outcome::WrongException) << context;
    EXPECT_NE(feed_v1(blob), Outcome::WrongException) << context;
    // Garbage essentially never reproduces a valid header, but the invariant
    // we assert is typed-failure, not which kind.
    expect_no_crash(feed_text, blob, context);
  }
}

TEST(TraceFuzz, GarbageAppendedToValidBlob) {
  for (std::uint64_t seed : kSeeds) {
    const Corpus c = make_corpus(seed, false);
    Rng rng(seed + 31);
    std::string tail(64, '\0');
    for (auto& ch : tail) ch = static_cast<char>(rng.uniform_int(0, 255));
    expect_v2_rejected(c.v2 + tail, "v2 with trailing garbage, seed " + std::to_string(seed));
    expect_no_crash(feed_v1, c.v1 + tail, "v1 with trailing garbage");
    expect_no_crash(feed_text, c.text + tail, "text with trailing garbage");
  }
}

}  // namespace
}  // namespace chronosync
