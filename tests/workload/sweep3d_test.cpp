#include "workload/sweep3d.hpp"

#include <gtest/gtest.h>

#include "analysis/clock_condition.hpp"
#include "sync/clc.hpp"
#include "sync/interpolation.hpp"

namespace chronosync {
namespace {

JobConfig grid_job(int ranks, TimerSpec timer = timer_specs::perfect()) {
  JobConfig cfg;
  Rng rng(23);
  cfg.placement = pinning::scheduler_default(clusters::xeon_rwth(), ranks, rng);
  cfg.timer = std::move(timer);
  cfg.seed = 42;
  return cfg;
}

Sweep3dConfig tiny() {
  Sweep3dConfig cfg;
  cfg.px = 4;
  cfg.py = 4;
  cfg.iterations = 3;
  cfg.angles_per_block = 4;
  cfg.block_compute = 100 * units::us;
  return cfg;
}

TEST(Sweep3d, CompletesAndMatches) {
  auto res = run_sweep3d(tiny(), grid_job(16));
  EXPECT_GT(res.trace.match_messages().size(), 0u);
  EXPECT_EQ(res.trace.collect_collectives().size(), 3u);
  EXPECT_NO_THROW(res.trace.validate());
  for (Rank r = 0; r < 16; ++r) EXPECT_EQ(res.offsets.of(r).size(), 2u);
}

TEST(Sweep3d, WavefrontOrderInGroundTruth) {
  auto res = run_sweep3d(tiny(), grid_job(16));
  for (const auto& m : res.trace.match_messages()) {
    EXPECT_GE(res.trace.at(m.recv).true_ts,
              res.trace.at(m.send).true_ts +
                  res.trace.min_latency(m.send.proc, m.recv.proc) - 1e-12);
  }
}

TEST(Sweep3d, CornerRanksSendLessThanInterior) {
  auto res = run_sweep3d(tiny(), grid_job(16));
  std::vector<std::size_t> sends(16, 0);
  for (const auto& m : res.trace.match_messages()) {
    ++sends[static_cast<std::size_t>(m.send.proc)];
  }
  // Interior rank 5 = (1,1) forwards in every octant; corner rank 0 does not.
  EXPECT_GT(sends[5], sends[0]);
}

TEST(Sweep3d, GridMismatchRejected) {
  EXPECT_THROW(run_sweep3d(tiny(), grid_job(8)), std::invalid_argument);
}

TEST(Sweep3d, ClcRepairsPipelineChains) {
  // Drifting clocks on a deeply pipelined pattern: the CLC must repair the
  // whole chain without breaking the wavefront order.
  auto res = run_sweep3d(tiny(), grid_job(16, timer_specs::intel_tsc()));
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const auto input =
      apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));
  const ClcResult clc = controlled_logical_clock(res.trace, schedule, input);
  EXPECT_EQ(check_clock_condition(res.trace, clc.corrected, msgs, logical).violations(), 0u);
}

TEST(Sweep3d, DeterministicAcrossRuns) {
  auto a = run_sweep3d(tiny(), grid_job(16, timer_specs::intel_tsc()));
  auto b = run_sweep3d(tiny(), grid_job(16, timer_specs::intel_tsc()));
  ASSERT_EQ(a.trace.total_events(), b.trace.total_events());
  for (Rank r = 0; r < 16; ++r) {
    for (std::size_t i = 0; i < a.trace.events(r).size(); ++i) {
      EXPECT_DOUBLE_EQ(a.trace.events(r)[i].local_ts, b.trace.events(r)[i].local_ts);
    }
  }
}

}  // namespace
}  // namespace chronosync
