#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/pop.hpp"
#include "workload/smg2000.hpp"
#include "workload/sweep.hpp"

namespace chronosync {
namespace {

JobConfig tiny_job(int ranks, TimerSpec timer = timer_specs::perfect()) {
  JobConfig cfg;
  Rng rng(17);
  cfg.placement = pinning::scheduler_default(clusters::xeon_rwth(), ranks, rng);
  cfg.timer = std::move(timer);
  cfg.seed = 42;
  return cfg;
}

PopConfig tiny_pop() {
  PopConfig cfg;
  cfg.px = 4;
  cfg.py = 2;
  cfg.total_iterations = 30;
  cfg.traced_begin = 10;
  cfg.traced_end = 20;
  cfg.iter_compute = 200 * units::us;
  return cfg;
}

TEST(PopWorkload, TracesOnlyTheWindow) {
  auto res = run_pop(tiny_pop(), tiny_job(8));
  // 10 traced iterations, each: enter + 4 sends + 4 recvs + coll begin/end + exit.
  for (Rank r = 0; r < 8; ++r) {
    EXPECT_EQ(res.trace.events(r).size(), 10u * 12u) << "rank " << r;
  }
}

TEST(PopWorkload, OffsetsMeasuredTwice) {
  auto res = run_pop(tiny_pop(), tiny_job(8));
  for (Rank r = 0; r < 8; ++r) {
    EXPECT_EQ(res.offsets.of(r).size(), 2u);
  }
}

TEST(PopWorkload, MessagesMatchAndCollectivesComplete) {
  auto res = run_pop(tiny_pop(), tiny_job(8));
  EXPECT_EQ(res.trace.match_messages().size(), 8u * 10u * 4u);
  EXPECT_EQ(res.trace.collect_collectives().size(), 10u);
}

// Truth-based check used by several workload tests.
void expect_truth_clean(const Trace& trace) {
  const auto msgs = trace.match_messages();
  for (const auto& m : msgs) {
    EXPECT_GE(trace.at(m.recv).true_ts,
              trace.at(m.send).true_ts + trace.min_latency(m.send.proc, m.recv.proc) - 1e-12);
  }
}

TEST(PopWorkload, TruthNeverViolates) {
  auto res = run_pop(tiny_pop(), tiny_job(8));
  expect_truth_clean(res.trace);
}

TEST(PopWorkload, ValidatesTraceInvariants) {
  auto res = run_pop(tiny_pop(), tiny_job(8));
  EXPECT_NO_THROW(res.trace.validate());
}

TEST(PopWorkload, GridMismatchRejected) {
  PopConfig cfg = tiny_pop();
  EXPECT_THROW(run_pop(cfg, tiny_job(6)), std::invalid_argument);
}

TEST(PopWorkload, BadWindowRejected) {
  PopConfig cfg = tiny_pop();
  cfg.traced_end = 50;  // beyond total_iterations
  EXPECT_THROW(run_pop(cfg, tiny_job(8)), std::invalid_argument);
}

SmgConfig tiny_smg() {
  SmgConfig cfg;
  cfg.px = 4;
  cfg.py = 2;
  cfg.levels = 3;
  cfg.iterations = 2;
  cfg.setup_exchanges = 1;
  cfg.level_compute = 100 * units::us;
  cfg.pre_sleep = 0.5;
  cfg.post_sleep = 0.5;
  return cfg;
}

TEST(SmgWorkload, RunsAndTraces) {
  auto res = run_smg(tiny_smg(), tiny_job(8));
  EXPECT_GT(res.trace.total_events(), 0u);
  EXPECT_GT(res.trace.match_messages().size(), 0u);
  // Setup allreduce + one per iteration.
  EXPECT_EQ(res.trace.collect_collectives().size(), 3u);
  for (Rank r = 0; r < 8; ++r) EXPECT_EQ(res.offsets.of(r).size(), 2u);
}

TEST(SmgWorkload, HasLongRangePartners) {
  auto res = run_smg(tiny_smg(), tiny_job(8));
  // Some messages must span a grid distance > 1 (non-nearest-neighbour).
  bool long_range = false;
  for (const auto& m : res.trace.match_messages()) {
    const int dx = std::abs(m.send.proc % 4 - m.recv.proc % 4);
    if (dx > 1 && dx < 3) long_range = true;  // distance 2 in x
  }
  EXPECT_TRUE(long_range);
}

TEST(SmgWorkload, TruthNeverViolates) {
  auto res = run_smg(tiny_smg(), tiny_job(8));
  expect_truth_clean(res.trace);
}

TEST(SweepWorkload, BidirectionalTrafficEverywhere) {
  SweepConfig cfg;
  cfg.rounds = 100;
  auto res = run_sweep(cfg, tiny_job(4));
  // Every ordered pair should have seen traffic with 100 random shifts.
  std::set<std::pair<Rank, Rank>> pairs;
  for (const auto& m : res.trace.match_messages()) {
    pairs.insert({m.send.proc, m.recv.proc});
  }
  EXPECT_EQ(pairs.size(), 12u);
}

TEST(SweepWorkload, MessageCountMatchesRounds) {
  SweepConfig cfg;
  cfg.rounds = 50;
  auto res = run_sweep(cfg, tiny_job(4));
  EXPECT_EQ(res.trace.match_messages().size(), 200u);
}

TEST(SweepWorkload, OptionalCollectives) {
  SweepConfig cfg;
  cfg.rounds = 20;
  cfg.collective_every = 5;
  auto res = run_sweep(cfg, tiny_job(4));
  EXPECT_EQ(res.trace.collect_collectives().size(), 4u);
}

TEST(SweepWorkload, NoProbeMode) {
  SweepConfig cfg;
  cfg.rounds = 10;
  cfg.probe = false;
  auto res = run_sweep(cfg, tiny_job(4));
  EXPECT_TRUE(res.offsets.of(1).empty());
}

TEST(SweepWorkload, TruthNeverViolates) {
  SweepConfig cfg;
  cfg.rounds = 100;
  auto res = run_sweep(cfg, tiny_job(6, timer_specs::intel_tsc()));
  expect_truth_clean(res.trace);
}

}  // namespace
}  // namespace chronosync
