#include "benchkit/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace chronosync::benchkit {
namespace {

TEST(JsonValue, DumpsScalars) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(-3.5).dump(), "-3.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(JsonValue, IntegralNumbersHaveNoDecimalPoint) {
  EXPECT_EQ(JsonValue(1e6).dump(), "1000000");
  EXPECT_EQ(JsonValue(std::int64_t{1234567890123}).dump(), "1234567890123");
}

TEST(JsonValue, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(JsonValue, EscapesStrings) {
  EXPECT_EQ(JsonValue("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", 1).set("alpha", 2).set("mid", "x");
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":\"x\"}");
  obj.set("alpha", 9);  // replace keeps position
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":\"x\"}");
  ASSERT_NE(obj.find("mid"), nullptr);
  EXPECT_EQ(obj.find("mid")->as_string(), "x");
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonValue, RoundTripsNestedDocument) {
  JsonValue arr = JsonValue::array();
  arr.push_back(1).push_back("two");
  JsonValue inner = JsonValue::object();
  inner.set("k", true);
  arr.push_back(inner);
  JsonValue doc = JsonValue::object();
  doc.set("list", arr).set("pi", 3.25).set("none", JsonValue());

  const std::string text = doc.dump();
  const JsonValue back = JsonValue::parse(text);
  EXPECT_EQ(back.dump(), text);
  ASSERT_TRUE(back.find("list")->is_array());
  EXPECT_EQ(back.find("list")->items().size(), 3u);
  EXPECT_TRUE(back.find("list")->items()[2].find("k")->as_bool());
  EXPECT_DOUBLE_EQ(back.find("pi")->as_number(), 3.25);
  EXPECT_TRUE(back.find("none")->is_null());
}

TEST(JsonValue, ParsesWhitespaceAndEscapes) {
  const JsonValue v = JsonValue::parse("  { \"a\" : [ 1 , -2.5e2 ], \"b\\n\" : \"\\u0041\" } ");
  EXPECT_DOUBLE_EQ(v.find("a")->items()[1].as_number(), -250.0);
  EXPECT_EQ(v.find("b\n")->as_string(), "A");
}

TEST(JsonValue, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("nul"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
}

TEST(JsonValue, TypeMismatchThrows) {
  EXPECT_THROW(JsonValue(1.0).as_string(), std::invalid_argument);
  EXPECT_THROW(JsonValue("x").as_number(), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync::benchkit
