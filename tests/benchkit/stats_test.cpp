#include "benchkit/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace chronosync::benchkit {
namespace {

// A constant sample has no sampling noise: every resampled median equals the
// sample value, so the interval must collapse to zero width exactly.
TEST(BootstrapMedianCi, ConstantSampleGivesZeroWidthInterval) {
  const std::vector<double> samples(7, 123.5);
  const BootstrapCi ci = bootstrap_median_ci(samples, 500, 0.95, 1);
  EXPECT_DOUBLE_EQ(ci.point, 123.5);
  EXPECT_DOUBLE_EQ(ci.lo, 123.5);
  EXPECT_DOUBLE_EQ(ci.hi, 123.5);
  EXPECT_EQ(ci.resamples, 500);
  EXPECT_DOUBLE_EQ(ci.confidence, 0.95);
}

TEST(BootstrapMedianCi, SingleSampleCollapsesToThatSample) {
  const BootstrapCi ci = bootstrap_median_ci({42.0}, 100, 0.9, 7);
  EXPECT_DOUBLE_EQ(ci.point, 42.0);
  EXPECT_DOUBLE_EQ(ci.lo, 42.0);
  EXPECT_DOUBLE_EQ(ci.hi, 42.0);
}

// A strongly bimodal sample is the adversarial case for normal-theory
// intervals; the bootstrap must still produce an interval that covers the
// sample median and stays inside the sample's range.
TEST(BootstrapMedianCi, BimodalSampleCoversMedian) {
  std::vector<double> samples;
  for (int i = 0; i < 10; ++i) samples.push_back(100.0);
  for (int i = 0; i < 10; ++i) samples.push_back(900.0);
  const BootstrapCi ci = bootstrap_median_ci(samples, 2000, 0.95, 3);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_GE(ci.lo, *std::min_element(samples.begin(), samples.end()));
  EXPECT_LE(ci.hi, *std::max_element(samples.begin(), samples.end()));
  // With half the mass at each mode, resampled medians land on both modes:
  // the interval must reflect that spread rather than hug one mode.
  EXPECT_GT(ci.hi - ci.lo, 0.0);
}

TEST(BootstrapMedianCi, DeterministicUnderFixedSeed) {
  const std::vector<double> samples = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const BootstrapCi a = bootstrap_median_ci(samples, 1000, 0.95, 42);
  const BootstrapCi b = bootstrap_median_ci(samples, 1000, 0.95, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_DOUBLE_EQ(a.point, b.point);

  // A different seed resamples differently; on a spread-out sample the odds
  // of identical quantiles are negligible, so the bounds should move.
  const BootstrapCi c = bootstrap_median_ci(samples, 1000, 0.95, 43);
  EXPECT_TRUE(c.lo != a.lo || c.hi != a.hi);
}

TEST(BootstrapMedianCi, WiderConfidenceGivesWiderInterval) {
  const std::vector<double> samples = {10.0, 12.0, 11.0, 30.0, 13.0, 12.5, 11.5, 14.0};
  const BootstrapCi narrow = bootstrap_median_ci(samples, 2000, 0.5, 5);
  const BootstrapCi wide = bootstrap_median_ci(samples, 2000, 0.99, 5);
  EXPECT_LE(wide.lo, narrow.lo);
  EXPECT_GE(wide.hi, narrow.hi);
}

TEST(BootstrapMedianCi, RejectsDegenerateArguments) {
  EXPECT_THROW(bootstrap_median_ci({}, 100, 0.95, 1), std::invalid_argument);
  EXPECT_THROW(bootstrap_median_ci({1.0}, 0, 0.95, 1), std::invalid_argument);
  EXPECT_THROW(bootstrap_median_ci({1.0}, 100, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(bootstrap_median_ci({1.0}, 100, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace chronosync::benchkit
