#include "benchkit/reporter.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchkit/runner.hpp"
#include "common/cli.hpp"

namespace chronosync::benchkit {
namespace {

BenchRecord sample_record() {
  BenchRecord rec;
  rec.suite = "unit";
  rec.name = "sample";
  rec.kind = "timing";
  rec.config = {{"ranks", "8"}, {"seed", "42"}};
  rec.iters = 3;
  rec.wall_ns_p50 = 1500.0;
  rec.wall_ns_p90 = 2000.0;
  rec.wall_ns_min = 1000.0;
  rec.throughput = 123.5;
  rec.metrics = {{"violations", 7.0}};
  rec.cpu_user_ns = 2500;
  rec.cpu_sys_ns = 500;
  rec.peak_rss_bytes = 1 << 20;
  rec.alloc_bytes_per_iter = 4096;
  rec.git_sha = "abc123";
  rec.timestamp = 1700000000;
  return rec;
}

// Golden schema contract: exact key set, order, and JSON types.  Downstream
// trajectory tooling keys off these names; changing them requires a
// kSchemaVersion bump plus an update here.
TEST(BenchRecordSchema, GoldenKeysAndTypes) {
  const JsonValue obj = to_json(sample_record());
  ASSERT_TRUE(obj.is_object());

  const std::vector<std::string> expected_keys = {
      "schema_version", "suite",       "name",       "kind",
      "config",         "iters",       "wall_ns_p50", "wall_ns_p90",
      "wall_ns_min",    "throughput",  "metrics",    "cpu_user_ns",
      "cpu_sys_ns",     "peak_rss_bytes",            "alloc_bytes_per_iter",
      "git_sha",        "timestamp"};
  std::vector<std::string> keys;
  for (const auto& [k, v] : obj.members()) keys.push_back(k);
  EXPECT_EQ(keys, expected_keys);

  // sample_record carries CPU time but no bootstrap interval: a v2 record.
  EXPECT_EQ(static_cast<int>(obj.find("schema_version")->as_number()), 2);
  EXPECT_TRUE(obj.find("suite")->is_string());
  EXPECT_TRUE(obj.find("name")->is_string());
  EXPECT_TRUE(obj.find("kind")->is_string());
  EXPECT_TRUE(obj.find("config")->is_object());
  for (const auto& [k, v] : obj.find("config")->members()) EXPECT_TRUE(v.is_string());
  EXPECT_TRUE(obj.find("iters")->is_number());
  EXPECT_TRUE(obj.find("wall_ns_p50")->is_number());
  EXPECT_TRUE(obj.find("wall_ns_p90")->is_number());
  EXPECT_TRUE(obj.find("wall_ns_min")->is_number());
  EXPECT_TRUE(obj.find("throughput")->is_number());
  EXPECT_TRUE(obj.find("metrics")->is_object());
  for (const auto& [k, v] : obj.find("metrics")->members()) EXPECT_TRUE(v.is_number());
  EXPECT_TRUE(obj.find("cpu_user_ns")->is_number());
  EXPECT_TRUE(obj.find("cpu_sys_ns")->is_number());
  EXPECT_TRUE(obj.find("peak_rss_bytes")->is_number());
  EXPECT_TRUE(obj.find("alloc_bytes_per_iter")->is_number());
  EXPECT_TRUE(obj.find("git_sha")->is_string());
  EXPECT_TRUE(obj.find("timestamp")->is_number());
}

TEST(BenchRecordSchema, GoldenSerializedForm) {
  const std::string expected =
      "{\"schema_version\":2,\"suite\":\"unit\",\"name\":\"sample\","
      "\"kind\":\"timing\",\"config\":{\"ranks\":\"8\",\"seed\":\"42\"},"
      "\"iters\":3,\"wall_ns_p50\":1500,\"wall_ns_p90\":2000,"
      "\"wall_ns_min\":1000,\"throughput\":123.5,"
      "\"metrics\":{\"violations\":7},\"cpu_user_ns\":2500,"
      "\"cpu_sys_ns\":500,\"peak_rss_bytes\":1048576,"
      "\"alloc_bytes_per_iter\":4096,\"git_sha\":\"abc123\","
      "\"timestamp\":1700000000}";
  EXPECT_EQ(to_json(sample_record()).dump(), expected);
}

// The stamped version must describe the record's content, not the library's
// latest revision: a record with no CPU sample and no bootstrap interval is
// written as v1 without the newer keys, and adding an interval promotes it
// to v3 with the four CI keys in place.
TEST(BenchRecordSchema, VersionReflectsContent) {
  BenchRecord plain = sample_record();
  plain.cpu_user_ns = 0;
  plain.cpu_sys_ns = 0;
  const JsonValue v1 = to_json(plain);
  EXPECT_EQ(static_cast<int>(v1.find("schema_version")->as_number()), 1);
  EXPECT_EQ(v1.find("cpu_user_ns"), nullptr);
  EXPECT_EQ(v1.find("cpu_sys_ns"), nullptr);
  EXPECT_EQ(v1.find("wall_ns_ci_lo"), nullptr);

  BenchRecord with_ci = sample_record();
  with_ci.wall_ns_ci_lo = 1200.0;
  with_ci.wall_ns_ci_hi = 1800.0;
  with_ci.boot_resamples = 1000;
  with_ci.boot_confidence = 0.95;
  const JsonValue v3 = to_json(with_ci);
  EXPECT_EQ(static_cast<int>(v3.find("schema_version")->as_number()), 3);
  ASSERT_NE(v3.find("wall_ns_ci_lo"), nullptr);
  EXPECT_DOUBLE_EQ(v3.find("wall_ns_ci_lo")->as_number(), 1200.0);
  EXPECT_DOUBLE_EQ(v3.find("wall_ns_ci_hi")->as_number(), 1800.0);
  EXPECT_EQ(static_cast<int>(v3.find("boot_resamples")->as_number()), 1000);
  EXPECT_DOUBLE_EQ(v3.find("boot_confidence")->as_number(), 0.95);

  const BenchRecord back = record_from_json(v3);
  EXPECT_DOUBLE_EQ(back.wall_ns_ci_lo, with_ci.wall_ns_ci_lo);
  EXPECT_DOUBLE_EQ(back.wall_ns_ci_hi, with_ci.wall_ns_ci_hi);
  EXPECT_EQ(back.boot_resamples, with_ci.boot_resamples);
  EXPECT_DOUBLE_EQ(back.boot_confidence, with_ci.boot_confidence);

  const BenchRecord plain_back = record_from_json(v1);
  EXPECT_EQ(plain_back.cpu_user_ns, 0);
  EXPECT_EQ(plain_back.boot_resamples, 0);
}

// v1 records (the committed baselines) must keep parsing: the CPU fields did
// not exist, so they default to zero.
TEST(BenchRecordSchema, ParsesVersion1RecordsWithZeroCpuFields) {
  JsonValue v1 = to_json(sample_record());
  v1.set("schema_version", 1);
  // A v1 record would not carry the CPU keys, but find() keeps the first
  // occurrence, so build a faithful copy without them.
  JsonValue stripped = JsonValue::object();
  for (const auto& [k, v] : v1.members()) {
    if (k == "cpu_user_ns" || k == "cpu_sys_ns") continue;
    stripped.set(k, v);
  }
  const BenchRecord back = record_from_json(stripped);
  EXPECT_EQ(back.cpu_user_ns, 0);
  EXPECT_EQ(back.cpu_sys_ns, 0);
  EXPECT_EQ(back.suite, "unit");
  EXPECT_DOUBLE_EQ(back.wall_ns_p50, 1500.0);
}

TEST(BenchRecordSchema, RoundTripsThroughJson) {
  const BenchRecord rec = sample_record();
  const BenchRecord back = record_from_json(JsonValue::parse(to_json(rec).dump()));
  EXPECT_EQ(back.suite, rec.suite);
  EXPECT_EQ(back.name, rec.name);
  EXPECT_EQ(back.kind, rec.kind);
  EXPECT_EQ(back.config, rec.config);
  EXPECT_EQ(back.iters, rec.iters);
  EXPECT_DOUBLE_EQ(back.wall_ns_p50, rec.wall_ns_p50);
  EXPECT_DOUBLE_EQ(back.wall_ns_p90, rec.wall_ns_p90);
  EXPECT_DOUBLE_EQ(back.wall_ns_min, rec.wall_ns_min);
  EXPECT_DOUBLE_EQ(back.throughput, rec.throughput);
  EXPECT_EQ(back.metrics, rec.metrics);
  EXPECT_EQ(back.cpu_user_ns, rec.cpu_user_ns);
  EXPECT_EQ(back.cpu_sys_ns, rec.cpu_sys_ns);
  EXPECT_EQ(back.peak_rss_bytes, rec.peak_rss_bytes);
  EXPECT_EQ(back.alloc_bytes_per_iter, rec.alloc_bytes_per_iter);
  EXPECT_EQ(back.git_sha, rec.git_sha);
  EXPECT_EQ(back.timestamp, rec.timestamp);
}

TEST(BenchRecordSchema, RejectsWrongVersionAndMissingKeys) {
  JsonValue wrong = to_json(sample_record());
  wrong.set("schema_version", kSchemaVersion + 1);
  EXPECT_THROW(record_from_json(wrong), std::invalid_argument);

  JsonValue missing = JsonValue::object();
  missing.set("schema_version", kSchemaVersion);
  EXPECT_THROW(record_from_json(missing), std::invalid_argument);

  EXPECT_THROW(record_from_json(JsonValue(3.0)), std::invalid_argument);
}

TEST(JsonReporter, AppendsOneLinePerRecordAndCreatesDirectories) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "chronosync_reporter_test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path file = dir / "nested" / "out.json";

  const JsonReporter reporter(file.string());
  reporter.append(sample_record());
  BenchRecord second = sample_record();
  second.name = "second";
  reporter.append(second);

  std::ifstream in(file);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(record_from_json(JsonValue::parse(lines[0])).name, "sample");
  EXPECT_EQ(record_from_json(JsonValue::parse(lines[1])).name, "second");
  std::filesystem::remove_all(dir);
}

Harness make_harness(const std::vector<std::string>& extra_args) {
  std::vector<const char*> argv = {"test_benchkit"};
  for (const auto& a : extra_args) argv.push_back(a.c_str());
  const Cli cli(static_cast<int>(argv.size()), argv.data());
  return Harness(cli, "unit_suite");
}

// Two same-seed harness runs must produce identical measurement identities
// (names, configs, iteration counts) so trajectory diffs line up run-to-run;
// only wall times and resource numbers may differ.
TEST(Harness, SameSeedRunsProduceIdenticalRecordIdentities) {
  const std::vector<std::string> args = {"--seed", "7", "--reps", "3", "--warmup", "0"};
  auto run = [&args] {
    Harness h = make_harness(args);
    volatile double sink = 0.0;
    h.time("spin", {{"n", "100"}}, 100, [&sink] {
      for (int i = 0; i < 100; ++i) sink = sink + static_cast<double>(i);
    });
    h.metric("figure", {{"case", "a"}}, {{"value", 3.5}});
    return h.records();
  };
  const std::vector<BenchRecord> a = run();
  const std::vector<BenchRecord> b = run();

  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].suite, b[i].suite);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].config, b[i].config);
    EXPECT_EQ(a[i].iters, b[i].iters);
    EXPECT_EQ(a[i].metrics, b[i].metrics);
    EXPECT_EQ(a[i].git_sha, b[i].git_sha);
  }
}

TEST(Harness, StampsSeedIntersAndSchemaFields) {
  Harness h = make_harness({"--seed", "9", "--reps", "2", "--warmup", "1"});
  EXPECT_EQ(h.reps(), 2);
  EXPECT_EQ(h.warmup(), 1);
  EXPECT_FALSE(h.json_enabled());

  int calls = 0;
  const BenchRecord rec = h.time("count_calls", {}, 0, [&calls] { ++calls; });
  EXPECT_EQ(calls, 3);  // 1 warmup + 2 timed
  EXPECT_EQ(rec.suite, "unit_suite");
  EXPECT_EQ(rec.kind, "timing");
  EXPECT_EQ(rec.iters, 2);
  ASSERT_EQ(rec.config.size(), 1u);
  EXPECT_EQ(rec.config[0].first, "seed");
  EXPECT_EQ(rec.config[0].second, "9");
  EXPECT_GE(rec.wall_ns_p50, rec.wall_ns_min);
  EXPECT_GE(rec.wall_ns_p90, rec.wall_ns_p50);
  EXPECT_GT(rec.peak_rss_bytes, 0);
  EXPECT_GT(rec.timestamp, 0);
  EXPECT_FALSE(rec.git_sha.empty());
}

// Timed records carry a bootstrap interval by default (schema v3) that
// brackets the reported median; --boot-resamples 0 opts out, dropping the
// record back to the CPU-only schema.
TEST(Harness, BootstrapIntervalBracketsMedianAndCanBeDisabled) {
  Harness h = make_harness({"--reps", "5", "--warmup", "0"});
  EXPECT_EQ(h.boot_resamples(), 1000);
  const BenchRecord rec = h.time("timed", {}, 0, [] {
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  });
  EXPECT_EQ(rec.boot_resamples, 1000);
  EXPECT_DOUBLE_EQ(rec.boot_confidence, 0.95);
  EXPECT_LE(rec.wall_ns_ci_lo, rec.wall_ns_p50);
  EXPECT_GE(rec.wall_ns_ci_hi, rec.wall_ns_p50);

  Harness off = make_harness({"--reps", "3", "--warmup", "0", "--boot-resamples", "0"});
  const BenchRecord plain = off.time("timed", {}, 0, [] {});
  EXPECT_EQ(plain.boot_resamples, 0);
  EXPECT_DOUBLE_EQ(plain.wall_ns_ci_lo, 0.0);
  EXPECT_DOUBLE_EQ(plain.wall_ns_ci_hi, 0.0);
}

TEST(Harness, WritesJsonLinesWhenRequested) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "chronosync_harness_test";
  std::filesystem::remove_all(dir);
  const std::filesystem::path file = dir / "records.json";

  Harness h = make_harness({"--json", file.string(), "--reps", "1", "--warmup", "0"});
  ASSERT_TRUE(h.json_enabled());
  h.time("timed", {}, 10, [] {});
  h.metric("scalar", {}, {{"x", 1.0}});

  std::ifstream in(file);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  const BenchRecord timed = record_from_json(JsonValue::parse(lines[0]));
  EXPECT_EQ(timed.kind, "timing");
  EXPECT_GT(timed.throughput, 0.0);
  const BenchRecord scalar = record_from_json(JsonValue::parse(lines[1]));
  EXPECT_EQ(scalar.kind, "metric");
  ASSERT_EQ(scalar.metrics.size(), 1u);
  EXPECT_EQ(scalar.metrics[0].first, "x");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace chronosync::benchkit
