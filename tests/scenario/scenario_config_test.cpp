#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace chronosync::scenario {
namespace {

// The scenario config parser is the trust boundary between committed JSON
// files and the simulation engines: every defect must surface as a typed
// ScenarioError naming the offending member, never as a crash or a silently
// ignored key.

ScenarioErrorKind kind_of(const std::string& text) {
  try {
    parse_scenario(text);
  } catch (const ScenarioError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected ScenarioError for: " << text;
  return ScenarioErrorKind::Io;
}

TEST(ScenarioConfig, MinimalDocumentGetsDefaults) {
  const ScenarioSpec spec = parse_scenario(R"({"name": "mini"})");
  EXPECT_EQ(spec.name, "mini");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.workload.kind, WorkloadKind::Sweep);
  EXPECT_EQ(spec.workload.ranks, 8);
  EXPECT_EQ(spec.clock.timer, "intel-tsc");
  EXPECT_LT(spec.clock.base_drift_max, 0.0);  // sentinel: keep the preset
  EXPECT_TRUE(spec.stream.enabled);
  EXPECT_TRUE(spec.expect.clc_clean_audit);
  EXPECT_EQ(spec.expect.raw_violations_min, -1);
}

TEST(ScenarioConfig, FullDocumentRoundTrips) {
  const ScenarioSpec spec = parse_scenario(R"({
    "name": "full", "description": "d", "seed": 7,
    "workload": {
      "kind": "dynamic", "ranks": 6, "rounds": 120, "bytes": 1024,
      "gap_mean": 2.0, "gap_spread": 0.1, "collective_every": 10,
      "probe_pings": 5, "pinning": "block",
      "elephant": {"bytes": 262144, "ranks": [0, 3], "probability": 0.25},
      "membership": [{"rank": 2, "join_round": 10, "leave_round": 90}]
    },
    "clock": {
      "timer": "gettimeofday",
      "overrides": {"wander_sigma": 1e-8, "wander_clamp": 2e-6},
      "storms": [{"nodes": [0, 1], "start_fraction": 0.2,
                  "duration_fraction": 0.3, "extra_ppm": 500}],
      "steps": [{"rank": 1, "at_fraction": 0.5, "step": 0.001}],
      "leap_second_ranks": [4]
    },
    "network": {"asymmetry_extra": 1e-5, "varying_amplitude": 2e-5,
                "varying_period": 3.0},
    "stream": {"enabled": true, "backward_window": 500.0, "horizon": 600.0,
               "emit_batch": 64},
    "expect": {"raw_violations_min": 3, "raw_violations_max": 5000,
               "clc_repairs_min": 2, "structural_clean": true,
               "differential_clean": true, "clc_clean_audit": true,
               "stream_identical": true}
  })");
  EXPECT_EQ(spec.workload.kind, WorkloadKind::Dynamic);
  EXPECT_EQ(spec.workload.elephant.ranks, (std::vector<Rank>{0, 3}));
  ASSERT_EQ(spec.workload.membership.size(), 1u);
  EXPECT_EQ(spec.workload.membership[0].leave_round, 90);
  EXPECT_DOUBLE_EQ(spec.clock.wander_sigma, 1e-8);
  EXPECT_LT(spec.clock.base_drift_max, 0.0);  // untouched override stays sentinel
  ASSERT_EQ(spec.clock.storms.size(), 1u);
  EXPECT_EQ(spec.clock.storms[0].nodes, (std::vector<int>{0, 1}));
  ASSERT_EQ(spec.clock.steps.size(), 1u);
  EXPECT_EQ(spec.clock.steps[0].rank, 1);
  EXPECT_EQ(spec.clock.leap_second_ranks, (std::vector<Rank>{4}));
  EXPECT_DOUBLE_EQ(spec.network.asymmetry_extra, 1e-5);
  EXPECT_EQ(spec.stream.emit_batch, 64);
  EXPECT_EQ(spec.expect.raw_violations_min, 3);
  EXPECT_EQ(spec.expect.clc_repairs_min, 2);
}

TEST(ScenarioConfig, MalformedJsonIsParseError) {
  EXPECT_EQ(kind_of("{"), ScenarioErrorKind::Parse);
  EXPECT_EQ(kind_of(""), ScenarioErrorKind::Parse);
  EXPECT_EQ(kind_of(R"({"name": "x",})"), ScenarioErrorKind::Parse);
}

TEST(ScenarioConfig, UnknownKeysAreRejectedAtEveryLevel) {
  EXPECT_EQ(kind_of(R"({"name": "x", "bogus": 1})"), ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"typo_rounds": 5}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "clock": {"overrides": {"wander": 1}}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "expect": {"raw_min": 1}})"),
            ScenarioErrorKind::Schema);
}

TEST(ScenarioConfig, SchemaViolations) {
  // No name / wrong root type.
  EXPECT_EQ(kind_of(R"({"seed": 1})"), ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"([1, 2])"), ScenarioErrorKind::Schema);
  // Wrong member types.
  EXPECT_EQ(kind_of(R"({"name": 5})"), ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "seed": "soon"})"), ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "seed": 1.5})"), ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": 3})"), ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"ranks": [4]}})"),
            ScenarioErrorKind::Schema);
  // Range checks.
  EXPECT_EQ(kind_of(R"({"name": "x", "seed": -1})"), ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"ranks": 1}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"gap_spread": 1.0}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"kind": "ring"}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"pinning": "socket"}})"),
            ScenarioErrorKind::Schema);
}

TEST(ScenarioConfig, ProbeEveryParsesAndRejectsNegatives) {
  const ScenarioSpec spec = parse_scenario(
      R"({"name": "x", "workload": {"probe_every": 25}})");
  EXPECT_EQ(spec.workload.probe_every, 25);
  // Default: no mid-run probe batches.
  EXPECT_EQ(parse_scenario(R"({"name": "x"})").workload.probe_every, 0);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"probe_every": -1}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"probe_every": 1.5}})"),
            ScenarioErrorKind::Schema);
}

TEST(ScenarioConfig, AccuracyExpectationsParse) {
  const ScenarioSpec spec = parse_scenario(R"({"name": "x", "expect": {
    "accuracy": [{"method": "kalman-drift", "reference": "linear-interpolation",
                  "max_rms_ratio": 0.9, "rms_slack": 1e-6}]}})");
  ASSERT_EQ(spec.expect.accuracy.size(), 1u);
  EXPECT_EQ(spec.expect.accuracy[0].method, "kalman-drift");
  EXPECT_EQ(spec.expect.accuracy[0].reference, "linear-interpolation");
  EXPECT_DOUBLE_EQ(spec.expect.accuracy[0].max_rms_ratio, 0.9);
  EXPECT_DOUBLE_EQ(spec.expect.accuracy[0].rms_slack, 1e-6);
}

TEST(ScenarioConfig, AccuracyExpectationsAreValidatedAgainstVocabulary) {
  // Unknown method / reference names must die in the parser, not at runtime
  // deep in the differential suite.
  EXPECT_EQ(kind_of(R"({"name": "x", "expect": {"accuracy": [
                {"method": "no-such-method", "reference": "raw"}]}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "expect": {"accuracy": [
                {"method": "kalman-drift", "reference": "no-such-method"}]}})"),
            ScenarioErrorKind::Schema);
  // Racing a method against itself is vacuous.
  EXPECT_EQ(kind_of(R"({"name": "x", "expect": {"accuracy": [
                {"method": "kalman-drift", "reference": "kalman-drift"}]}})"),
            ScenarioErrorKind::Schema);
  // Degenerate race parameters.
  EXPECT_EQ(kind_of(R"({"name": "x", "expect": {"accuracy": [
                {"method": "kalman-drift", "reference": "raw", "max_rms_ratio": 0}]}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "expect": {"accuracy": [
                {"method": "kalman-drift", "reference": "raw", "rms_slack": -1e-9}]}})"),
            ScenarioErrorKind::Schema);
  // Unknown keys inside an accuracy entry.
  EXPECT_EQ(kind_of(R"({"name": "x", "expect": {"accuracy": [
                {"method": "kalman-drift", "reference": "raw", "tol": 1}]}})"),
            ScenarioErrorKind::Schema);
}

TEST(ScenarioConfig, DynamicOnlyFeaturesRequireDynamicKind) {
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"elephant": {"probability": 0.1}}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(
      kind_of(R"({"name": "x", "workload": {"membership": [{"rank": 0, "join_round": 1}]}})"),
      ScenarioErrorKind::Schema);
}

TEST(ScenarioConfig, RankReferencesAreValidatedAgainstWorkload) {
  // Step rank 7 with only 4 ranks.
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"ranks": 4},
                        "clock": {"steps": [{"rank": 7}]}})"),
            ScenarioErrorKind::Schema);
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"ranks": 4},
                        "clock": {"leap_second_ranks": [4]}})"),
            ScenarioErrorKind::Schema);
  // Negative step would break local monotonicity.
  EXPECT_EQ(kind_of(R"({"name": "x",
                        "clock": {"steps": [{"rank": 0, "step": -1e-3}]}})"),
            ScenarioErrorKind::Schema);
  // Empty membership window.
  EXPECT_EQ(kind_of(R"({"name": "x", "workload": {"kind": "dynamic",
                        "membership": [{"rank": 0, "join_round": 5, "leave_round": 5}]}})"),
            ScenarioErrorKind::Schema);
}

TEST(ScenarioConfig, MissingFileIsIoError) {
  try {
    load_scenario_file("/nonexistent/scenario.json");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.kind(), ScenarioErrorKind::Io);
    EXPECT_NE(std::string(e.what()).find("io"), std::string::npos);
  }
}

TEST(ScenarioConfig, LoadFileReportsPathInErrors) {
  const std::string path = testing::TempDir() + "/broken_scenario.json";
  std::ofstream(path) << "{\"name\":";
  try {
    load_scenario_file(path);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.kind(), ScenarioErrorKind::Parse);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ScenarioConfig, ListScenarioFilesSortsAndFilters) {
  const std::string dir = testing::TempDir() + "/scn_list";
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/b.json") << "{}";
  std::ofstream(dir + "/a.json") << "{}";
  std::ofstream(dir + "/notes.txt") << "x";
  const std::vector<std::string> files = list_scenario_files(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("a.json"), std::string::npos);
  EXPECT_NE(files[1].find("b.json"), std::string::npos);
  EXPECT_THROW(list_scenario_files(dir + "/missing"), ScenarioError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace chronosync::scenario
