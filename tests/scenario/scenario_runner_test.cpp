#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace chronosync::scenario {
namespace {

// End-to-end smoke for the scenario pipeline itself (tiny fixtures — the
// committed battery under scenarios/ covers the real matrix): outcomes carry
// the measured facts, expectations turn measurements into failures, and the
// dynamic workload composes with post-run faults.

ScenarioRunOptions temp_opts() {
  ScenarioRunOptions o;
  o.work_dir = testing::TempDir();
  return o;
}

TEST(ScenarioRunner, DriftingClocksYieldRepairsAndCleanAudit) {
  ScenarioSpec spec = parse_scenario(R"({
    "name": "smoke-drift",
    "workload": {"ranks": 4, "rounds": 60},
    "expect": {"raw_violations_min": 1, "clc_repairs_min": 1}
  })");
  const ScenarioOutcome out = run_scenario(spec, temp_opts());
  EXPECT_TRUE(out.ok()) << out.summary();
  EXPECT_GT(out.events, 0u);
  EXPECT_GE(out.raw_violations, 1u);
  EXPECT_EQ(out.raw_structural, 0u);
  EXPECT_TRUE(out.differential_clean);
  EXPECT_GE(out.clc_repairs, 1u);
  EXPECT_EQ(out.clc_audit_violations, 0u);
  EXPECT_TRUE(out.stream_checked);
  EXPECT_TRUE(out.stream_identical);
}

TEST(ScenarioRunner, UnmetExpectationBecomesFailureNotThrow) {
  // Perfect clocks cannot produce violations, so demanding some must fail
  // the expectation — and only the expectation.
  ScenarioSpec spec = parse_scenario(R"({
    "name": "smoke-unmet",
    "workload": {"ranks": 4, "rounds": 40},
    "clock": {"timer": "perfect"},
    "expect": {"raw_violations_min": 1}
  })");
  const ScenarioOutcome out = run_scenario(spec, temp_opts());
  EXPECT_FALSE(out.ok());
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_NE(out.failures[0].find("raw Eq. 1"), std::string::npos);
  EXPECT_NE(out.summary().find("FAIL"), std::string::npos);
}

TEST(ScenarioRunner, ViolationCeilingHoldsOnPerfectClocks) {
  ScenarioSpec spec = parse_scenario(R"({
    "name": "smoke-ceiling",
    "workload": {"ranks": 4, "rounds": 40},
    "clock": {"timer": "perfect"},
    "expect": {"raw_violations_max": 0}
  })");
  const ScenarioOutcome out = run_scenario(spec, temp_opts());
  EXPECT_TRUE(out.ok()) << out.summary();
  EXPECT_EQ(out.raw_violations, 0u);
  EXPECT_EQ(out.clc_repairs, 0u);
}

TEST(ScenarioRunner, DynamicChurnWithStepComposes) {
  ScenarioSpec spec = parse_scenario(R"({
    "name": "smoke-churn",
    "workload": {"kind": "dynamic", "ranks": 4, "rounds": 80,
                 "membership": [{"rank": 2, "join_round": 20, "leave_round": 60}],
                 "elephant": {"ranks": [0]}},
    "clock": {"steps": [{"rank": 1, "at_fraction": 0.5, "step": 0.0002}]},
    "expect": {"raw_violations_min": 1, "clc_repairs_min": 1}
  })");
  const ScenarioOutcome out = run_scenario(spec, temp_opts());
  EXPECT_TRUE(out.ok()) << out.summary();
}

TEST(ScenarioRunner, SameSeedSameOutcome) {
  ScenarioSpec spec = parse_scenario(R"({
    "name": "smoke-repro",
    "seed": 77,
    "workload": {"ranks": 4, "rounds": 50}
  })");
  const ScenarioOutcome a = run_scenario(spec, temp_opts());
  const ScenarioOutcome b = run_scenario(spec, temp_opts());
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.raw_violations, b.raw_violations);
  EXPECT_DOUBLE_EQ(a.raw_worst, b.raw_worst);
  EXPECT_EQ(a.clc_repairs, b.clc_repairs);
}

TEST(ScenarioRunner, UnknownTimerIsSchemaError) {
  ScenarioSpec spec = parse_scenario(R"({"name": "smoke-timer",
                                         "workload": {"ranks": 4, "rounds": 10}})");
  spec.clock.timer = "sundial";
  try {
    run_scenario(spec, temp_opts());
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.kind(), ScenarioErrorKind::Schema);
  }
}

}  // namespace
}  // namespace chronosync::scenario
