#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace chronosync::scenario {
namespace {

// Registers every committed scenario under scenarios/ as its own gtest case
// (and therefore its own `ctest -L scenario` entry): the adversarial matrix
// is enumerable, and a red scenario names itself in the test report.  The
// directory is baked in at configure time; CHRONOSYNC_SCENARIO_DIR always
// points at the source tree's scenarios/.

std::vector<std::string> battery_files() {
  return list_scenario_files(CHRONOSYNC_SCENARIO_DIR);
}

class ScenarioBattery : public testing::TestWithParam<std::string> {};

TEST_P(ScenarioBattery, RunsCleanEndToEnd) {
  const ScenarioSpec spec = load_scenario_file(GetParam());
  ScenarioRunOptions opts;
  opts.work_dir = testing::TempDir();
  const ScenarioOutcome out = run_scenario(spec, opts);
  EXPECT_TRUE(out.ok()) << out.summary();
  // Committed scenarios must actually exercise the machinery: a scenario
  // whose trace is empty tests nothing.
  EXPECT_GT(out.events, 0u);
}

std::string param_name(const testing::TestParamInfo<std::string>& info) {
  std::string stem = info.param;
  const std::size_t slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const std::size_t dot = stem.rfind(".json");
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  for (char& c : stem) {
    if ((c < 'a' || c > 'z') && (c < 'A' || c > 'Z') && (c < '0' || c > '9')) c = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(Committed, ScenarioBattery, testing::ValuesIn(battery_files()),
                         param_name);

// The battery must never silently shrink: the matrix the README advertises is
// the matrix that runs.
TEST(ScenarioBatteryInventory, AtLeastTenCommittedScenarios) {
  EXPECT_GE(battery_files().size(), 10u);
}

}  // namespace
}  // namespace chronosync::scenario
