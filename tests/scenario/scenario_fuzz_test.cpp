// Deterministic mutation corpus for the scenario config parser — the same
// discipline as the trace-reader fuzz battery: seed valid scenario documents,
// apply structured mutations (bit/byte flips, truncations, splices, token
// substitutions, deep nesting, plain garbage), and assert parse_scenario
// ALWAYS either succeeds or throws exactly ScenarioError.  No mutation may
// crash, abort, leak (the suite runs under ASan/UBSan in CI), or escape with
// a foreign exception type; mutations that keep the JSON well-formed must be
// caught by the strict unknown-key/type/range schema instead.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "scenario/scenario.hpp"

namespace chronosync::scenario {
namespace {

enum class Outcome { Parsed, ScenarioErr, WrongException };

Outcome feed(const std::string& text) {
  try {
    parse_scenario(text, "<fuzz>");
    return Outcome::Parsed;
  } catch (const ScenarioError&) {
    return Outcome::ScenarioErr;
  } catch (...) {
    return Outcome::WrongException;
  }
}

void expect_contained(const std::string& text, const std::string& context) {
  if (feed(text) == Outcome::WrongException) {
    ADD_FAILURE() << "parser threw something other than ScenarioError: " << context;
  }
}

std::vector<std::string> seed_corpus() {
  return {
      R"({"name": "mini"})",
      R"({"name": "full", "seed": 7,
          "workload": {"kind": "dynamic", "ranks": 6, "rounds": 100,
                       "elephant": {"bytes": 262144, "ranks": [0], "probability": 0.1},
                       "membership": [{"rank": 1, "join_round": 5, "leave_round": 50}]},
          "clock": {"timer": "gettimeofday",
                    "overrides": {"wander_sigma": 1e-8},
                    "storms": [{"nodes": [0], "extra_ppm": 300}],
                    "steps": [{"rank": 0, "at_fraction": 0.5, "step": 0.001}],
                    "leap_second_ranks": [2]},
          "network": {"asymmetry_extra": 1e-5, "varying_amplitude": 2e-5},
          "stream": {"backward_window": 100.0, "horizon": 200.0, "emit_batch": 32},
          "expect": {"raw_violations_min": 1, "clc_repairs_min": 1}})",
      R"({"name": "edge", "workload": {"ranks": 2, "rounds": 1, "gap_spread": 0.0}})",
      R"({"name": "race", "workload": {"ranks": 4, "rounds": 50, "probe_every": 10},
          "expect": {"accuracy": [
            {"method": "kalman-drift", "reference": "linear-interpolation",
             "max_rms_ratio": 0.95, "rms_slack": 1e-6}]}})",
  };
}

TEST(ScenarioConfigFuzz, SeedsParse) {
  for (const std::string& seed : seed_corpus()) {
    EXPECT_EQ(feed(seed), Outcome::Parsed) << seed;
  }
}

TEST(ScenarioConfigFuzz, ByteFlips) {
  Rng rng(0xC0FFEE);
  for (const std::string& seed : seed_corpus()) {
    for (int i = 0; i < 400; ++i) {
      std::string mutated = seed;
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(seed.size()) - 1));
      mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
      expect_contained(mutated, "byte flip @" + std::to_string(pos));
    }
  }
}

TEST(ScenarioConfigFuzz, BitFlips) {
  Rng rng(0xBEEF);
  for (const std::string& seed : seed_corpus()) {
    for (int i = 0; i < 400; ++i) {
      std::string mutated = seed;
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(seed.size()) - 1));
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << rng.uniform_int(0, 7)));
      expect_contained(mutated, "bit flip @" + std::to_string(pos));
    }
  }
}

TEST(ScenarioConfigFuzz, Truncations) {
  for (const std::string& seed : seed_corpus()) {
    for (std::size_t len = 0; len < seed.size(); ++len) {
      expect_contained(seed.substr(0, len), "truncation @" + std::to_string(len));
    }
  }
}

TEST(ScenarioConfigFuzz, Splices) {
  Rng rng(0xDEAD);
  const std::vector<std::string> corpus = seed_corpus();
  for (int i = 0; i < 500; ++i) {
    const std::string& a = corpus[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(corpus.size()) - 1))];
    const std::string& b = corpus[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(corpus.size()) - 1))];
    const std::size_t cut_a =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(a.size())));
    const std::size_t cut_b =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(b.size())));
    expect_contained(a.substr(0, cut_a) + b.substr(cut_b), "splice #" + std::to_string(i));
  }
}

TEST(ScenarioConfigFuzz, TokenSubstitutions) {
  // Swap in hostile tokens at every literal position that looks replaceable:
  // huge numbers, negative values, wrong types, duplicate keys.
  const std::vector<std::string> tokens = {
      "1e309",  "-1e309", "9223372036854775808", "-42",   "1e-320", "null",
      "true",   "false",  "\"\"",                "[]",    "{}",     "\"nan\"",
      "1.5",    "0.0",    "1e6",                 "[[[]]]",
      // Method-vocabulary hostility: unknown names must surface as the typed
      // Schema error the chronocheck exit-4 contract depends on, and a known
      // name in a numeric slot must be a type error, not a crash.
      "\"no-such-method\"", "\"kalman-drift\"", "\"raw\""};
  for (const std::string& seed : seed_corpus()) {
    for (std::size_t pos = 0; pos < seed.size(); ++pos) {
      if (seed[pos] != ':') continue;
      // Replace the value after this colon (up to the next , } ]) with each token.
      std::size_t end = pos + 1;
      int depth = 0;
      while (end < seed.size() &&
             (depth > 0 || (seed[end] != ',' && seed[end] != '}' && seed[end] != ']'))) {
        if (seed[end] == '[' || seed[end] == '{') ++depth;
        if (seed[end] == ']' || seed[end] == '}') --depth;
        ++end;
      }
      for (const std::string& token : tokens) {
        expect_contained(seed.substr(0, pos + 1) + token + seed.substr(end),
                         "token @" + std::to_string(pos) + " = " + token);
      }
    }
  }
}

TEST(ScenarioConfigFuzz, DeepNestingAndGarbage) {
  // Deep nesting must be rejected (or parsed) without exhausting the stack.
  expect_contained(std::string(100000, '['), "deep arrays");
  expect_contained(std::string(100000, '{'), "deep objects");
  std::string nested = R"({"name": "x", "workload": )";
  for (int i = 0; i < 2000; ++i) nested += R"({"a":)";
  expect_contained(nested, "nested workload");

  Rng rng(0xFACE);
  for (int i = 0; i < 200; ++i) {
    std::string garbage(static_cast<std::size_t>(rng.uniform_int(0, 300)), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.uniform_int(0, 255));
    expect_contained(garbage, "garbage #" + std::to_string(i));
  }
}

TEST(ScenarioConfigFuzz, DuplicateKeysStayDeterministic) {
  // Whatever the dup-key policy is, it must be a policy: same input, same
  // outcome, and never a foreign exception.
  const std::string doc = R"({"name": "a", "name": "b", "seed": 1, "seed": 2})";
  const Outcome first = feed(doc);
  EXPECT_NE(first, Outcome::WrongException);
  EXPECT_EQ(feed(doc), first);
}

}  // namespace
}  // namespace chronosync::scenario
