// chronocheck — correction-stack verification driver.
//
// Three modes, composable in one invocation:
//
//   chronocheck <trace-file> [--slack S]
//       Audits the file's recorded timestamps against the paper invariants
//       (finiteness, per-rank local order, Eq. 1 with slack S) and
//       cross-checks the three clock-condition scanners on it.  Violations of
//       Eq. 1 are expected on raw traces — that is the paper's point — so
//       they fail the run only under --strict.
//
//   chronocheck --synthetic [--ranks N --rounds R --seed S --tolerance T]
//       Simulates a drifting-clock run, executes every correction method on
//       it, audits each output, compares all outputs pairwise (CLC serial vs
//       parallel must be bit-identical), and cross-checks the scanners.
//
//   chronocheck --method <name> [--ranks N --rounds R --seed S --probe-every K]
//       Runs one named correction method (vocabulary: verify::
//       all_method_names()) on the synthetic fixture, audits its output
//       (zero slack for clock-restoring methods), and prints its RMS error
//       against the simulator's ground-truth master time next to the raw and
//       linear-interpolation baselines.  An unknown name exits 4 with one
//       typed line, exactly like an invalid scenario config.
//
//   chronocheck --omp [--threads T --rounds R --seed S]
//       Races the OpenMP CLC backend differentially on a POMP benchmark
//       trace: merged output vs the sequential CLC on the thread-split trace
//       (bit-identical), serial vs parallel CLC on the POMP schedule
//       (bit-identical), and a zero-slack invariant audit.
//
//   chronocheck --faults [--ranks N --rounds R --seed S]
//       Re-runs the synthetic differential suite under every fault class of
//       verify/fault_injection.hpp.  Every class must complete with a clean
//       report — degenerate inputs are handled, not crashed on.
//
//   chronocheck --stream [--ranks N --rounds R --seed S --emit-batch B
//                         --backward-window W --work-dir D --input F]
//       Cross-checks the out-of-core windowed streaming CLC against the
//       in-memory CLC on the synthetic fixture (or on the v2 trace file F):
//       the corrected trace and the jump statistics must be bit-identical
//       whenever the streaming run reports zero divergences.
//
//   chronocheck --scenario <file> [--work-dir D]
//   chronocheck --scenario-battery <dir> [--work-dir D]
//       Runs one committed adversarial scenario (or every *.json in a
//       directory) end-to-end: simulate the configured workload on the
//       configured clocks and network, apply the declared clock faults, audit
//       the raw trace, run the full differential suite, repair with the CLC,
//       audit the repair with zero slack, cross-check the streaming CLC, and
//       judge the scenario's declared expectations.
//
//   chronocheck --write-fixture <file> [--ranks N --rounds R --seed S]
//       Writes the synthetic drifting-clock fixture as a v2 trace file (a
//       reproducible corpus seed for the fuzz battery and the exit-code
//       regression tests).
//
// Observability (every mode): --obs-level {off,metrics,trace} selects the
// level, --trace-out F writes a Chrome trace, --metrics-out F writes a
// chronosync-metrics-v1 snapshot (Prometheus text when F ends in .prom/.txt),
// --obs-sample-ms N runs the background RSS/CPU sampler.  Battery mode
// derives one artifact pair per scenario from the requested paths and resets
// the recorded state between entries.  Invalid values for any of these exit 2
// with one typed line, like every other usage error.
//
// Exit codes: 0 all checks passed; 1 a requested check failed; 2 usage or
// unexpected error; 3 trace i/o error (missing/truncated/corrupt trace file);
// 4 scenario config error (missing file, malformed JSON, schema violation).
// Every error path prints exactly one "chronocheck: ..." line on stderr.
#include <algorithm>
#include <chrono>
#include <exception>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "obs/obs.hpp"
#include "obs/session.hpp"
#include "ompsim/omp_bench.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "sync/replay.hpp"
#include "trace/logical_messages.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_io_error.hpp"
#include "verify/differential.hpp"
#include "verify/fault_injection.hpp"
#include "verify/invariants.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

namespace {

AppRunResult make_fixture(const Cli& cli) {
  SweepConfig cfg;
  // Long inter-round gaps let drift accumulate enough that the interpolated
  // input still violates Eq. 1 — otherwise the CLC has nothing to repair and
  // the differential only certifies the trivial path.
  cfg.rounds = static_cast<int>(cli.get_int("rounds", 400));
  cfg.gap_mean = cli.get_double("gap", 3.0);
  cfg.collective_every = 50;
  cfg.probe_every = static_cast<int>(cli.get_int("probe-every", 0));
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(),
                                      static_cast<int>(cli.get_int("ranks", 8)));
  job.timer = timer_specs::intel_tsc();
  job.seed = cli.get_seed();
  return run_sweep(cfg, std::move(job));
}

int audit_file(const std::string& path, const Cli& cli) {
  std::cout << "chronocheck: auditing " << path << "\n";
  const Trace trace = read_trace_file(path);
  const auto messages = trace.match_messages();
  const auto logical = derive_logical_messages(trace);
  const ReplaySchedule schedule(trace, messages, logical);

  verify::VerifyOptions opt;
  opt.clock_condition_slack = cli.get_double("slack", 0.0);
  const verify::InvariantChecker checker(trace, schedule, opt);
  const verify::VerifyReport report = checker.check(TimestampArray::from_local(trace));
  std::cout << report.summary();

  std::vector<std::string> failures;
  verify::cross_check_scans(trace, schedule, failures);
  for (const auto& f : failures) std::cout << "FAIL " << f << "\n";

  const std::size_t structural =
      report.total() - report.count(verify::InvariantKind::ClockCondition);
  const bool clock_fails =
      cli.has("strict") && report.count(verify::InvariantKind::ClockCondition) > 0;
  if (structural > 0 || clock_fails || !failures.empty()) return 1;
  std::cout << "ok: structural invariants hold"
            << (report.count(verify::InvariantKind::ClockCondition) > 0
                    ? " (clock-condition violations reported above; re-run with "
                      "--strict to fail on them)"
                    : "")
            << "\n";
  return 0;
}

int run_synthetic(const Cli& cli) {
  const AppRunResult res = make_fixture(cli);
  std::cout << "chronocheck: synthetic fixture with " << res.trace.ranks() << " ranks, "
            << res.trace.total_events() << " events\n";
  const auto report =
      verify::run_differential_suite(res.trace, res.offsets, cli.get_double("tolerance", 1e-9));
  std::cout << report.summary();
  if (!report.ok()) return 1;
  std::cout << "ok: differential suite clean\n";
  return 0;
}

int run_method(const Cli& cli) {
  const std::string name = cli.get("method", "");
  const auto& known = verify::all_method_names();
  if (std::find(known.begin(), known.end(), name) == known.end()) {
    // The method vocabulary is closed and shared with the scenario layer's
    // accuracy expectations; an unknown name is the same class of input
    // error as an invalid config, so it takes the same typed exit path.
    std::string vocabulary;
    for (const auto& n : known) vocabulary += (vocabulary.empty() ? "" : ", ") + n;
    throw scenario::ScenarioError(scenario::ScenarioErrorKind::Schema,
                                  "--method \"" + name + "\" is not a known correction "
                                  "method (known: " + vocabulary + ")");
  }

  const AppRunResult res = make_fixture(cli);
  std::cout << "chronocheck: method " << name << " on " << res.trace.ranks() << " ranks, "
            << res.trace.total_events() << " events\n";
  const auto messages = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, messages, logical);
  const auto outputs = verify::run_all_methods(res.trace, res.offsets, messages, schedule);

  const verify::MethodOutput* selected = nullptr;
  for (const auto& m : outputs) {
    if (m.name == name) selected = &m;
  }
  if (selected == nullptr) {
    std::cerr << "chronocheck: method " << name
              << " was skipped on this fixture (probes unusable)\n";
    return 1;
  }

  verify::VerifyOptions opt;
  opt.clock_condition_slack =
      selected->restores_clock_condition ? 0.0 : cli.get_double("slack", kTimeInfinity);
  const verify::InvariantChecker checker(res.trace, schedule, opt);
  const verify::VerifyReport report = checker.check(selected->ts);
  std::cout << report.summary();

  for (const auto& acc : verify::ground_truth_accuracy(res.trace, outputs)) {
    if (acc.name == name || acc.name == "linear-interpolation" || acc.name == "raw") {
      std::cout << "accuracy " << acc.name << ": rms " << acc.rms_error << " s, max |err| "
                << acc.max_abs_error << " s\n";
    }
  }
  if (!report.ok()) return 1;
  std::cout << "ok: " << name << " passes its invariant audit\n";
  return 0;
}

int run_omp(const Cli& cli) {
  OmpBenchConfig cfg;
  cfg.threads = static_cast<int>(cli.get_int("threads", 4));
  cfg.regions = static_cast<int>(cli.get_int("rounds", 300));
  cfg.seed = cli.get_seed();
  const OmpBenchResult res = run_omp_benchmark(cfg);
  std::cout << "chronocheck: omp CLC differential on " << cfg.threads << " threads, "
            << res.trace.total_events() << " events\n";
  const Placement pl = omp_thread_placement(cfg.node, cfg.threads);
  std::vector<std::string> failures;
  const std::size_t n = verify::cross_check_omp_clc(res.trace, pl, failures);
  std::cout << "omp differential: " << n << " comparison(s), " << failures.size()
            << " contract failure(s)\n";
  for (const auto& f : failures) std::cout << "FAIL " << f << "\n";
  if (!failures.empty()) return 1;
  std::cout << "ok: omp CLC bit-identical to the sequential CLC and audit-clean\n";
  return 0;
}

int run_faults(const Cli& cli) {
  const AppRunResult res = make_fixture(cli);
  const std::uint64_t seed = cli.get_seed();
  int failures = 0;
  for (const verify::FaultClass fault : verify::all_fault_classes()) {
    std::cout << "chronocheck: fault class " << verify::to_string(fault) << "\n";
    try {
      Trace trace = res.trace;
      OffsetStore offsets = res.offsets;
      switch (fault) {
        case verify::FaultClass::ProbeOutlier:
          offsets = verify::with_probe_outliers(offsets, 1e-3, seed);
          break;
        case verify::FaultClass::DuplicateProbes:
          offsets = verify::with_duplicate_probes(offsets);
          break;
        case verify::FaultClass::PoisonedProbes:
          offsets = verify::with_poisoned_probes(offsets);
          break;
        case verify::FaultClass::ClockStep: {
          const auto& events = trace.events(0);
          const Time mid =
              events.empty() ? 0.0 : events[events.size() / 2].local_ts;
          trace = verify::with_clock_step(trace, trace.ranks() / 2, mid, 50e-6);
          break;
        }
        case verify::FaultClass::OneSidedTraffic:
          trace = verify::with_one_sided_traffic(trace);
          break;
        case verify::FaultClass::EmptyRanks:
          trace = verify::with_empty_ranks(trace);
          break;
      }
      const auto report = verify::run_differential_suite(trace, offsets);
      std::cout << report.summary();
      if (!report.ok()) {
        std::cout << "FAIL " << verify::to_string(fault)
                  << ": differential suite reported contract failures\n";
        ++failures;
      }
    } catch (const std::exception& e) {
      std::cout << "FAIL " << verify::to_string(fault)
                << ": pipeline threw instead of reporting: " << e.what() << "\n";
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::cout << "ok: all fault classes handled gracefully\n";
  return 0;
}

int run_stream(const Cli& cli) {
  const std::string input = cli.get("input", "");
  const Trace trace = input.empty() ? make_fixture(cli).trace : read_trace_file(input);
  std::cout << "chronocheck: windowed streaming CLC vs in-memory on "
            << trace.ranks() << " ranks, " << trace.total_events() << " events\n";
  StreamClcOptions opt;
  opt.emit_batch = static_cast<std::size_t>(cli.get_int("emit-batch", 256));
  // The fixture's drift offsets reach hundreds of milliseconds, so their
  // amortization ramps span seconds; a generous window keeps the run
  // divergence-free, which the cross-check demands.
  opt.backward_window = cli.get_double("backward-window", 1e4);
  std::vector<std::string> failures;
  const std::size_t n = verify::cross_check_windowed_clc(
      trace, cli.get("work-dir", "."), opt, failures);
  std::cout << "windowed differential: " << n << " comparison(s), " << failures.size()
            << " contract failure(s)\n";
  for (const auto& f : failures) std::cout << "FAIL " << f << "\n";
  if (!failures.empty()) return 1;
  std::cout << "ok: streaming CLC bit-identical to in-memory CLC\n";
  return 0;
}

int run_one_scenario(const std::string& path, const scenario::ScenarioRunOptions& opts) {
  const scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  std::cout << "chronocheck: scenario " << spec.name << " (" << path << ")\n";
  if (!spec.description.empty()) std::cout << "  " << spec.description << "\n";
  const scenario::ScenarioOutcome outcome = scenario::run_scenario(spec, opts);
  std::cout << outcome.summary();
  return outcome.ok() ? 0 : 1;
}

// Derives a per-scenario artifact path from the battery's requested output:
// the scenario file's stem lands before the output's extension, so
// `--metrics-out m.json` over drift-storm.json writes m.drift-storm.json.
std::string per_scenario_path(const std::string& requested, const std::string& scenario_path) {
  if (requested.empty()) return requested;
  const auto slash = scenario_path.find_last_of('/');
  std::string stem =
      slash == std::string::npos ? scenario_path : scenario_path.substr(slash + 1);
  if (stem.size() > 5 && stem.ends_with(".json")) stem.resize(stem.size() - 5);
  const auto dot = requested.rfind('.');
  if (dot == std::string::npos) return requested + "." + stem;
  return requested.substr(0, dot) + "." + stem + requested.substr(dot);
}

int run_scenario_battery(const std::string& dir, const scenario::ScenarioRunOptions& opts,
                         obs::ObsSession& obs_session) {
  const std::vector<std::string> files = scenario::list_scenario_files(dir);
  if (files.empty()) {
    std::cerr << "chronocheck: no *.json scenarios in " << dir << "\n";
    return 2;
  }
  // Per-scenario artifacts: the battery owns the output paths from here on
  // (the session's end-of-run write is disarmed) and emits one artifact pair
  // per scenario, with the rings and registry reset in between so no file is
  // cumulative across entries.
  const auto [trace_req, metrics_req] = obs_session.claim_outputs();
  int rc = 0;
  int failed = 0;
  double total_wall = 0.0;
  for (const std::string& path : files) {
    obs::reset();
    const auto t0 = std::chrono::steady_clock::now();
    const int one = run_one_scenario(path, opts);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    total_wall += wall;
    obs_session.write_artifacts(per_scenario_path(trace_req, path),
                                per_scenario_path(metrics_req, path));
    std::cout << "battery: " << path << " wall " << wall << " s\n";
    rc |= one;
    failed += one != 0 ? 1 : 0;
  }
  std::cout << "battery: " << files.size() << " scenario(s), " << failed
            << " failed, total wall " << total_wall << " s\n";
  if (rc == 0) std::cout << "ok: scenario battery clean\n";
  return rc;
}

int write_fixture(const std::string& path, const Cli& cli) {
  const AppRunResult res = make_fixture(cli);
  write_trace_v2_file(res.trace, path);
  std::cout << "chronocheck: wrote " << res.trace.ranks() << "-rank fixture ("
            << res.trace.total_events() << " events) to " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    chronosync::obs::ObsSession obs_session(cli, "chronocheck");
    int rc = 0;
    bool ran = false;
    if (cli.has("synthetic")) {
      rc |= run_synthetic(cli);
      ran = true;
    }
    if (cli.has("method")) {
      rc |= run_method(cli);
      ran = true;
    }
    if (cli.has("omp")) {
      rc |= run_omp(cli);
      ran = true;
    }
    if (cli.has("faults")) {
      rc |= run_faults(cli);
      ran = true;
    }
    if (cli.has("stream")) {
      rc |= run_stream(cli);
      ran = true;
    }
    scenario::ScenarioRunOptions scenario_opts;
    scenario_opts.work_dir = cli.get("work-dir", ".");
    if (cli.has("scenario")) {
      rc |= run_one_scenario(cli.get("scenario", ""), scenario_opts);
      ran = true;
    }
    if (cli.has("scenario-battery")) {
      rc |= run_scenario_battery(cli.get("scenario-battery", ""), scenario_opts, obs_session);
      ran = true;
    }
    if (cli.has("write-fixture")) {
      rc |= write_fixture(cli.get("write-fixture", ""), cli);
      ran = true;
    }
    for (const auto& path : cli.positional()) {
      rc |= audit_file(path, cli);
      ran = true;
    }
    if (!ran) {
      std::cerr << "usage: chronocheck <trace-file> [--slack S] [--strict]\n"
                   "       chronocheck --synthetic [--ranks N --rounds R --seed S "
                   "--tolerance T]\n"
                   "       chronocheck --method <name> [--ranks N --rounds R --seed S "
                   "--probe-every K --slack S]\n"
                   "       chronocheck --omp [--threads T --rounds R --seed S]\n"
                   "       chronocheck --faults [--ranks N --rounds R --seed S]\n"
                   "       chronocheck --stream [--ranks N --rounds R --seed S "
                   "--emit-batch B --backward-window W --work-dir D --input F]\n"
                   "       chronocheck --scenario <file> [--work-dir D]\n"
                   "       chronocheck --scenario-battery <dir> [--work-dir D]\n"
                   "       chronocheck --write-fixture <file> [--ranks N --rounds R "
                   "--seed S]\n";
      return 2;
    }
    obs_session.finish();
    return rc;
  } catch (const TraceIoError& e) {
    std::cerr << "chronocheck: " << e.what() << "\n";
    return 3;
  } catch (const scenario::ScenarioError& e) {
    std::cerr << "chronocheck: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "chronocheck: " << e.what() << "\n";
    return 2;
  }
}
