// chronoscope: offline analyzer/validator for the observability artifacts
// written by the obs layer (--trace-out / --metrics-out).
//
//   chronoscope trace.json              summary: top spans by self time,
//                                       per-thread utilization, counter stats
//   chronoscope --check trace.json      validate only (for CI): exits 0 when
//                                       the file parses, every B has a
//                                       matching E, and timestamps are sane
//   chronoscope --top N trace.json      rows in the span table (default 15)
//   chronoscope --phases trace.json     per-phase breakdown under the
//                                       dominant root span: wall, % of root,
//                                       self time, and the unattributed gap
//                                       (critical-path attribution for the
//                                       serial scenario pipeline)
//   chronoscope --metrics m.json        validate a chronosync-metrics-v1
//                                       snapshot: schema marker, finite
//                                       values, quantile monotonicity
//                                       (p50 <= p90 <= p99 <= p999 within
//                                       [min, max])
//   chronoscope --diff A B [--threshold PCT]
//                                       compare two artifacts (both metrics
//                                       snapshots or both traces); exits 1
//                                       when any gated value regressed by
//                                       more than PCT percent (default 25):
//                                       quantile keys for metrics, per-span
//                                       wall time for traces
//
// Validation is strict in every mode: a malformed file fails the run (exit
// 1; usage errors exit 2).  The summary relies on well-nested per-thread B/E
// sequences in array order, which is what the obs writer guarantees.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "benchkit/json.hpp"
#include "common/cli.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "obs/export.hpp"

namespace {

using chronosync::AsciiTable;
using chronosync::RunningStats;
using chronosync::benchkit::JsonValue;

struct SpanAgg {
  std::uint64_t count = 0;
  double total_us = 0.0;  // wall time inside the span, children included
  double self_us = 0.0;   // total minus directly nested children
};

struct ChildAgg {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
  double first_ts = 0.0;  // earliest begin, orders phases by pipeline position
  bool seen = false;
};

struct ThreadAgg {
  std::string name;
  double first_ts = 0.0;
  double last_ts = 0.0;
  double busy_us = 0.0;  // covered by depth-0 spans
  std::uint64_t spans = 0;
  bool saw_event = false;
};

struct CounterAgg {
  RunningStats stats;
  double last = 0.0;
};

struct OpenSpan {
  std::string name;
  double ts = 0.0;
  double child_us = 0.0;
};

struct Analysis {
  std::map<std::string, SpanAgg> spans;
  std::map<std::string, SpanAgg> roots;  // depth-0 spans only
  std::map<std::string, std::map<std::string, ChildAgg>> children;  // parent -> direct child
  std::map<int, ThreadAgg> threads;
  std::map<std::string, CounterAgg> counters;
  std::uint64_t events = 0;
  std::uint64_t span_count = 0;
};

[[noreturn]] void fail(const std::string& msg) {
  std::cerr << "chronoscope: " << msg << '\n';
  std::exit(1);
}

double require_number(const JsonValue& event, const char* key, std::uint64_t index) {
  const JsonValue* v = event.find(key);
  if (v == nullptr || !v->is_number()) {
    fail("event " + std::to_string(index) + ": missing numeric '" + key + "'");
  }
  return v->as_number();
}

std::string require_string(const JsonValue& event, const char* key, std::uint64_t index) {
  const JsonValue* v = event.find(key);
  if (v == nullptr || !v->is_string()) {
    fail("event " + std::to_string(index) + ": missing string '" + key + "'");
  }
  return v->as_string();
}

/// Single pass over traceEvents: validates the shape (every B matched by an E
/// of the same name on the same thread, in order) and aggregates the summary.
Analysis analyze(const JsonValue& doc) {
  if (!doc.is_object()) fail("top level is not a JSON object");
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    fail("missing 'traceEvents' array");
  }

  Analysis a;
  std::map<int, std::vector<OpenSpan>> open;  // per-tid B/E stack

  std::uint64_t index = 0;
  for (const JsonValue& event : events->items()) {
    ++index;
    if (!event.is_object()) fail("event " + std::to_string(index) + " is not an object");
    ++a.events;
    const std::string ph = require_string(event, "ph", index);

    if (ph == "M") {
      const std::string what = require_string(event, "name", index);
      if (what == "thread_name") {
        const int tid = static_cast<int>(require_number(event, "tid", index));
        const JsonValue* args = event.find("args");
        if (args != nullptr && args->is_object()) {
          if (const JsonValue* name = args->find("name"); name != nullptr && name->is_string()) {
            a.threads[tid].name = name->as_string();
          }
        }
      }
      continue;
    }

    const int tid = static_cast<int>(require_number(event, "tid", index));
    const double ts = require_number(event, "ts", index);
    if (ts < 0.0) fail("event " + std::to_string(index) + ": negative timestamp");
    ThreadAgg& th = a.threads[tid];
    if (!th.saw_event || ts < th.first_ts) th.first_ts = ts;
    th.last_ts = std::max(th.last_ts, ts);
    th.saw_event = true;

    if (ph == "B") {
      open[tid].push_back({require_string(event, "name", index), ts, 0.0});
    } else if (ph == "E") {
      auto& stack = open[tid];
      if (stack.empty()) {
        fail("event " + std::to_string(index) + ": 'E' with no open span on tid " +
             std::to_string(tid));
      }
      const std::string name = require_string(event, "name", index);
      if (stack.back().name != name) {
        fail("event " + std::to_string(index) + ": 'E' for '" + name +
             "' does not match open span '" + stack.back().name + "'");
      }
      const OpenSpan span = stack.back();
      stack.pop_back();
      const double dur = ts - span.ts;
      if (dur < 0.0) fail("event " + std::to_string(index) + ": span ends before it begins");

      SpanAgg& agg = a.spans[name];
      ++agg.count;
      agg.total_us += dur;
      agg.self_us += dur - span.child_us;
      ++a.span_count;
      ++th.spans;
      if (stack.empty()) {
        th.busy_us += dur;
        SpanAgg& root = a.roots[name];
        ++root.count;
        root.total_us += dur;
        root.self_us += dur - span.child_us;
      } else {
        stack.back().child_us += dur;
        ChildAgg& child = a.children[stack.back().name][name];
        ++child.count;
        child.total_us += dur;
        child.self_us += dur - span.child_us;
        if (!child.seen || span.ts < child.first_ts) {
          child.first_ts = span.ts;
          child.seen = true;
        }
      }
    } else if (ph == "C") {
      const std::string name = require_string(event, "name", index);
      const JsonValue* args = event.find("args");
      const JsonValue* value =
          (args != nullptr && args->is_object()) ? args->find("value") : nullptr;
      if (value == nullptr || !value->is_number()) {
        fail("event " + std::to_string(index) + ": counter without numeric args.value");
      }
      CounterAgg& c = a.counters[name];
      c.stats.add(value->as_number());
      c.last = value->as_number();
    } else {
      fail("event " + std::to_string(index) + ": unsupported phase '" + ph + "'");
    }
  }

  for (const auto& [tid, stack] : open) {
    if (!stack.empty()) {
      fail("unclosed span '" + stack.back().name + "' on tid " + std::to_string(tid));
    }
  }
  return a;
}

std::string format_us(double us) {
  std::ostringstream os;
  if (us >= 1e6) {
    os << AsciiTable::num(us / 1e6, 3) << " s";
  } else if (us >= 1e3) {
    os << AsciiTable::num(us / 1e3, 3) << " ms";
  } else {
    os << AsciiTable::num(us, 3) << " us";
  }
  return os.str();
}

void print_summary(const Analysis& a, int top) {
  std::cout << "events: " << a.events << "  spans: " << a.span_count
            << "  threads: " << a.threads.size() << "  counters: " << a.counters.size()
            << "\n\n";

  {
    std::vector<std::pair<std::string, SpanAgg>> rows(a.spans.begin(), a.spans.end());
    std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
      return x.second.self_us > y.second.self_us;
    });
    AsciiTable table({"span", "count", "self", "total", "avg total"});
    int shown = 0;
    for (const auto& [name, agg] : rows) {
      if (shown++ >= top) break;
      table.add_row({name, std::to_string(agg.count), format_us(agg.self_us),
                     format_us(agg.total_us),
                     format_us(agg.total_us / static_cast<double>(agg.count))});
    }
    std::cout << "Top spans by self time\n" << table.render() << '\n';
  }

  {
    AsciiTable table({"tid", "thread", "spans", "busy", "span window", "util %"});
    for (const auto& [tid, th] : a.threads) {
      if (!th.saw_event && th.name.empty()) continue;
      const double window = th.last_ts - th.first_ts;
      const double util = window > 0.0 ? 100.0 * th.busy_us / window : 0.0;
      table.add_row({std::to_string(tid), th.name.empty() ? "?" : th.name,
                     std::to_string(th.spans), format_us(th.busy_us), format_us(window),
                     AsciiTable::num(util, 1)});
    }
    std::cout << "Per-thread utilization (busy = depth-0 span coverage)\n"
              << table.render() << '\n';
  }

  if (!a.counters.empty()) {
    AsciiTable table({"counter", "samples", "min", "mean", "max", "last"});
    for (const auto& [name, c] : a.counters) {
      table.add_row({name, std::to_string(c.stats.count()), AsciiTable::num(c.stats.min(), 3),
                     AsciiTable::num(c.stats.mean(), 3), AsciiTable::num(c.stats.max(), 3),
                     AsciiTable::num(c.last, 3)});
    }
    std::cout << "Counters\n" << table.render();
  }
}

/// Per-phase breakdown under the dominant depth-0 span: each direct child is
/// one pipeline phase; wall share plus the unattributed gap attribute the
/// root's critical path (the pipeline runs its phases serially, so the wall
/// column *is* the critical-path cost of each phase).
int print_phases(const Analysis& a) {
  if (a.roots.empty()) fail("no completed depth-0 span to break down");
  const auto root_it =
      std::max_element(a.roots.begin(), a.roots.end(), [](const auto& x, const auto& y) {
        return x.second.total_us < y.second.total_us;
      });
  const std::string& root_name = root_it->first;
  const SpanAgg& root = root_it->second;

  std::cout << "Phase breakdown for '" << root_name << "' (" << root.count << " run(s), total "
            << format_us(root.total_us) << ")\n";

  std::vector<std::pair<std::string, ChildAgg>> phases;
  if (const auto it = a.children.find(root_name); it != a.children.end()) {
    phases.assign(it->second.begin(), it->second.end());
  }
  std::sort(phases.begin(), phases.end(),
            [](const auto& x, const auto& y) { return x.second.first_ts < y.second.first_ts; });

  AsciiTable table({"phase", "count", "wall", "% of root", "self", "avg"});
  double attributed_us = 0.0;
  double critical_us = 0.0;
  std::string critical;
  for (const auto& [name, c] : phases) {
    attributed_us += c.total_us;
    if (c.total_us > critical_us) {
      critical_us = c.total_us;
      critical = name;
    }
    table.add_row({name, std::to_string(c.count), format_us(c.total_us),
                   AsciiTable::num(root.total_us > 0.0 ? 100.0 * c.total_us / root.total_us : 0.0,
                                   1),
                   format_us(c.self_us),
                   format_us(c.total_us / static_cast<double>(c.count))});
  }
  const double gap_us = root.total_us - attributed_us;
  table.add_row({"(unattributed)", "", format_us(gap_us),
                 AsciiTable::num(root.total_us > 0.0 ? 100.0 * gap_us / root.total_us : 0.0, 1),
                 "", ""});
  std::cout << table.render();
  if (!critical.empty()) {
    std::cout << "critical phase: " << critical << " ("
              << AsciiTable::num(root.total_us > 0.0 ? 100.0 * critical_us / root.total_us : 0.0,
                                 1)
              << "% of the root's wall time)\n";
  }
  return 0;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) fail("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Validates one chronosync-metrics-v1 snapshot: schema marker, numeric and
/// finite values, and for every quantile family the ordering the histogram
/// guarantees (min <= p50 <= p90 <= p99 <= p999 <= max once it has samples).
int check_metrics(const std::string& path) {
  std::vector<std::pair<std::string, double>> metrics;
  try {
    metrics = chronosync::obs::read_metrics_json(slurp(path));
  } catch (const std::exception& e) {
    fail("'" + path + "': " + e.what());
  }
  for (const auto& [name, value] : metrics) {
    if (!std::isfinite(value)) fail("metric '" + name + "' is not finite");
  }

  // Group <family>.p50/.p90/.p99/.p999/.count/.min/.max by family prefix.
  std::map<std::string, std::map<std::string, double>> families;
  for (const auto& [name, value] : metrics) {
    for (const char* suffix : {".p50", ".p90", ".p99", ".p999", ".count", ".min", ".max"}) {
      if (name.size() > std::string(suffix).size() && name.ends_with(suffix)) {
        families[name.substr(0, name.size() - std::string(suffix).size())][suffix] = value;
      }
    }
  }
  std::size_t quantile_families = 0;
  for (const auto& [family, f] : families) {
    if (!f.count(".p50")) continue;  // histogram summaries carry no quantiles
    ++quantile_families;
    for (const char* suffix : {".p90", ".p99", ".p999", ".count", ".min", ".max"}) {
      if (!f.count(suffix)) fail("quantile family '" + family + "' is missing " + suffix);
    }
    const double count = f.at(".count");
    if (count < 0.0) fail("quantile family '" + family + "' has negative count");
    const double qs[] = {f.at(".min"), f.at(".p50"), f.at(".p90"), f.at(".p99"), f.at(".p999"),
                         f.at(".max")};
    if (count > 0.0) {
      for (std::size_t i = 1; i < std::size(qs); ++i) {
        if (qs[i - 1] > qs[i]) {
          fail("quantile family '" + family + "' is not monotone (min<=p50<=p90<=p99<=p999<=max)");
        }
      }
    }
  }
  std::cout << "chronoscope: metrics OK (" << metrics.size() << " metric(s), "
            << quantile_families << " quantile famil" << (quantile_families == 1 ? "y" : "ies")
            << ")\n";
  return 0;
}

/// Loads one artifact for --diff as a flat name -> value map.  Metrics
/// snapshots (schema marker present) gate their quantile keys; traces gate
/// per-span total wall time.
std::map<std::string, double> load_diff_values(const std::string& path, std::string& kind) {
  const std::string text = slurp(path);
  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const std::exception& e) {
    fail("'" + path + "' is not valid JSON: " + e.what());
  }
  std::map<std::string, double> out;
  if (doc.is_object() && doc.find("schema") != nullptr) {
    kind = "metrics";
    std::vector<std::pair<std::string, double>> metrics;
    try {
      metrics = chronosync::obs::read_metrics_json(text);
    } catch (const std::exception& e) {
      fail("'" + path + "': " + e.what());
    }
    for (const auto& [name, value] : metrics) {
      for (const char* suffix : {".p50", ".p90", ".p99", ".p999"}) {
        if (name.ends_with(suffix)) out[name] = value;
      }
    }
  } else {
    kind = "trace";
    const Analysis a = analyze(doc);
    for (const auto& [name, agg] : a.spans) out[name + ".wall_us"] = agg.total_us;
  }
  return out;
}

/// Threshold-gated regression comparison of two runs' artifacts, for CI: a
/// gated value that grew by more than --threshold percent from A to B fails
/// the diff.  Improvements and new/missing keys are reported, never fatal.
int run_diff(const std::string& path_a, const std::string& path_b, double threshold_pct) {
  if (threshold_pct < 0.0) fail("--threshold must be non-negative");
  std::string kind_a, kind_b;
  const std::map<std::string, double> a = load_diff_values(path_a, kind_a);
  const std::map<std::string, double> b = load_diff_values(path_b, kind_b);
  if (kind_a != kind_b) {
    fail("cannot diff a " + kind_a + " artifact against a " + kind_b + " artifact");
  }

  AsciiTable table({"key", "A", "B", "delta %", "verdict"});
  std::size_t compared = 0;
  std::size_t regressed = 0;
  std::size_t unmatched = 0;
  for (const auto& [key, va] : a) {
    const auto it = b.find(key);
    if (it == b.end()) {
      ++unmatched;
      continue;
    }
    const double vb = it->second;
    ++compared;
    // Relative growth with an absolute floor: sub-nanosecond jitter on a
    // near-zero baseline is noise, not a regression.
    const bool worse = vb > va * (1.0 + threshold_pct / 100.0) + 1e-9;
    const double delta_pct = va != 0.0 ? 100.0 * (vb - va) / va : (vb != 0.0 ? 100.0 : 0.0);
    if (worse) ++regressed;
    table.add_row({key, AsciiTable::num(va, 3), AsciiTable::num(vb, 3),
                   AsciiTable::num(delta_pct, 1), worse ? "REGRESSED" : "ok"});
  }
  unmatched += [&] {
    std::size_t only_b = 0;
    for (const auto& [key, vb] : b) only_b += a.count(key) == 0 ? 1 : 0;
    return only_b;
  }();

  std::cout << "diff (" << kind_a << ", threshold " << threshold_pct << "%): " << compared
            << " key(s) compared, " << regressed << " regressed, " << unmatched
            << " unmatched\n"
            << table.render();
  if (regressed > 0) {
    std::cerr << "chronoscope: " << regressed << " value(s) regressed beyond " << threshold_pct
              << "%\n";
    return 1;
  }
  std::cout << "ok: no value regressed beyond " << threshold_pct << "%\n";
  return 0;
}

/// The Cli swallows the token after a bare flag as its value, so a mode's
/// file arguments may land in the flag's value, in positional(), or split
/// across both; collect them in order.
std::vector<std::string> mode_paths(const chronosync::Cli& cli, const char* flag) {
  std::vector<std::string> paths;
  const std::string v = cli.get(flag, "1");
  if (v != "1" && !v.empty()) paths.push_back(v);
  for (const auto& p : cli.positional()) paths.push_back(p);
  return paths;
}

[[noreturn]] void usage() {
  std::cerr << "usage: chronoscope [--check] [--top N] <trace.json>\n"
               "       chronoscope --phases <trace.json>\n"
               "       chronoscope --metrics <metrics.json>\n"
               "       chronoscope --diff <A> <B> [--threshold PCT]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const chronosync::Cli cli(argc, argv);

  if (cli.has("diff")) {
    const std::vector<std::string> paths = mode_paths(cli, "diff");
    if (paths.size() != 2) usage();
    return run_diff(paths[0], paths[1], cli.get_double("threshold", 25.0));
  }
  if (cli.has("metrics")) {
    const std::vector<std::string> paths = mode_paths(cli, "metrics");
    if (paths.size() != 1) usage();
    return check_metrics(paths[0]);
  }

  const char* flag = cli.has("phases") ? "phases" : "check";
  const std::vector<std::string> paths = mode_paths(cli, flag);
  if (paths.size() != 1) usage();
  const std::string& path = paths[0];

  JsonValue doc;
  try {
    doc = JsonValue::parse(slurp(path));
  } catch (const std::exception& e) {
    fail("'" + path + "' is not valid JSON: " + e.what());
  }

  const Analysis a = analyze(doc);

  if (cli.has("phases")) return print_phases(a);
  if (cli.has("check")) {
    std::cout << "chronoscope: OK (" << a.events << " events, " << a.span_count
              << " spans, " << a.threads.size() << " threads)\n";
    return 0;
  }

  print_summary(a, static_cast<int>(cli.get_int("top", 15)));
  return 0;
}
