// chronoscope: offline viewer/validator for the Chrome trace-event JSON files
// written by the obs layer (--trace-out).
//
//   chronoscope trace.json              summary: top spans by self time,
//                                       per-thread utilization, counter stats
//   chronoscope --check trace.json      validate only (for CI): exits 0 when
//                                       the file parses, every B has a
//                                       matching E, and timestamps are sane
//   chronoscope --top N trace.json      rows in the span table (default 15)
//
// Validation is strict in both modes: a malformed file fails the run.  The
// summary relies on well-nested per-thread B/E sequences in array order,
// which is what the obs writer guarantees.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "benchkit/json.hpp"
#include "common/cli.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"

namespace {

using chronosync::AsciiTable;
using chronosync::RunningStats;
using chronosync::benchkit::JsonValue;

struct SpanAgg {
  std::uint64_t count = 0;
  double total_us = 0.0;  // wall time inside the span, children included
  double self_us = 0.0;   // total minus directly nested children
};

struct ThreadAgg {
  std::string name;
  double first_ts = 0.0;
  double last_ts = 0.0;
  double busy_us = 0.0;  // covered by depth-0 spans
  std::uint64_t spans = 0;
  bool saw_event = false;
};

struct CounterAgg {
  RunningStats stats;
  double last = 0.0;
};

struct OpenSpan {
  std::string name;
  double ts = 0.0;
  double child_us = 0.0;
};

struct Analysis {
  std::map<std::string, SpanAgg> spans;
  std::map<int, ThreadAgg> threads;
  std::map<std::string, CounterAgg> counters;
  std::uint64_t events = 0;
  std::uint64_t span_count = 0;
};

[[noreturn]] void fail(const std::string& msg) {
  std::cerr << "chronoscope: " << msg << '\n';
  std::exit(1);
}

double require_number(const JsonValue& event, const char* key, std::uint64_t index) {
  const JsonValue* v = event.find(key);
  if (v == nullptr || !v->is_number()) {
    fail("event " + std::to_string(index) + ": missing numeric '" + key + "'");
  }
  return v->as_number();
}

std::string require_string(const JsonValue& event, const char* key, std::uint64_t index) {
  const JsonValue* v = event.find(key);
  if (v == nullptr || !v->is_string()) {
    fail("event " + std::to_string(index) + ": missing string '" + key + "'");
  }
  return v->as_string();
}

/// Single pass over traceEvents: validates the shape (every B matched by an E
/// of the same name on the same thread, in order) and aggregates the summary.
Analysis analyze(const JsonValue& doc) {
  if (!doc.is_object()) fail("top level is not a JSON object");
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    fail("missing 'traceEvents' array");
  }

  Analysis a;
  std::map<int, std::vector<OpenSpan>> open;  // per-tid B/E stack

  std::uint64_t index = 0;
  for (const JsonValue& event : events->items()) {
    ++index;
    if (!event.is_object()) fail("event " + std::to_string(index) + " is not an object");
    ++a.events;
    const std::string ph = require_string(event, "ph", index);

    if (ph == "M") {
      const std::string what = require_string(event, "name", index);
      if (what == "thread_name") {
        const int tid = static_cast<int>(require_number(event, "tid", index));
        const JsonValue* args = event.find("args");
        if (args != nullptr && args->is_object()) {
          if (const JsonValue* name = args->find("name"); name != nullptr && name->is_string()) {
            a.threads[tid].name = name->as_string();
          }
        }
      }
      continue;
    }

    const int tid = static_cast<int>(require_number(event, "tid", index));
    const double ts = require_number(event, "ts", index);
    if (ts < 0.0) fail("event " + std::to_string(index) + ": negative timestamp");
    ThreadAgg& th = a.threads[tid];
    if (!th.saw_event || ts < th.first_ts) th.first_ts = ts;
    th.last_ts = std::max(th.last_ts, ts);
    th.saw_event = true;

    if (ph == "B") {
      open[tid].push_back({require_string(event, "name", index), ts, 0.0});
    } else if (ph == "E") {
      auto& stack = open[tid];
      if (stack.empty()) {
        fail("event " + std::to_string(index) + ": 'E' with no open span on tid " +
             std::to_string(tid));
      }
      const std::string name = require_string(event, "name", index);
      if (stack.back().name != name) {
        fail("event " + std::to_string(index) + ": 'E' for '" + name +
             "' does not match open span '" + stack.back().name + "'");
      }
      const OpenSpan span = stack.back();
      stack.pop_back();
      const double dur = ts - span.ts;
      if (dur < 0.0) fail("event " + std::to_string(index) + ": span ends before it begins");

      SpanAgg& agg = a.spans[name];
      ++agg.count;
      agg.total_us += dur;
      agg.self_us += dur - span.child_us;
      ++a.span_count;
      ++th.spans;
      if (stack.empty()) {
        th.busy_us += dur;
      } else {
        stack.back().child_us += dur;
      }
    } else if (ph == "C") {
      const std::string name = require_string(event, "name", index);
      const JsonValue* args = event.find("args");
      const JsonValue* value =
          (args != nullptr && args->is_object()) ? args->find("value") : nullptr;
      if (value == nullptr || !value->is_number()) {
        fail("event " + std::to_string(index) + ": counter without numeric args.value");
      }
      CounterAgg& c = a.counters[name];
      c.stats.add(value->as_number());
      c.last = value->as_number();
    } else {
      fail("event " + std::to_string(index) + ": unsupported phase '" + ph + "'");
    }
  }

  for (const auto& [tid, stack] : open) {
    if (!stack.empty()) {
      fail("unclosed span '" + stack.back().name + "' on tid " + std::to_string(tid));
    }
  }
  return a;
}

std::string format_us(double us) {
  std::ostringstream os;
  if (us >= 1e6) {
    os << AsciiTable::num(us / 1e6, 3) << " s";
  } else if (us >= 1e3) {
    os << AsciiTable::num(us / 1e3, 3) << " ms";
  } else {
    os << AsciiTable::num(us, 3) << " us";
  }
  return os.str();
}

void print_summary(const Analysis& a, int top) {
  std::cout << "events: " << a.events << "  spans: " << a.span_count
            << "  threads: " << a.threads.size() << "  counters: " << a.counters.size()
            << "\n\n";

  {
    std::vector<std::pair<std::string, SpanAgg>> rows(a.spans.begin(), a.spans.end());
    std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
      return x.second.self_us > y.second.self_us;
    });
    AsciiTable table({"span", "count", "self", "total", "avg total"});
    int shown = 0;
    for (const auto& [name, agg] : rows) {
      if (shown++ >= top) break;
      table.add_row({name, std::to_string(agg.count), format_us(agg.self_us),
                     format_us(agg.total_us),
                     format_us(agg.total_us / static_cast<double>(agg.count))});
    }
    std::cout << "Top spans by self time\n" << table.render() << '\n';
  }

  {
    AsciiTable table({"tid", "thread", "spans", "busy", "span window", "util %"});
    for (const auto& [tid, th] : a.threads) {
      if (!th.saw_event && th.name.empty()) continue;
      const double window = th.last_ts - th.first_ts;
      const double util = window > 0.0 ? 100.0 * th.busy_us / window : 0.0;
      table.add_row({std::to_string(tid), th.name.empty() ? "?" : th.name,
                     std::to_string(th.spans), format_us(th.busy_us), format_us(window),
                     AsciiTable::num(util, 1)});
    }
    std::cout << "Per-thread utilization (busy = depth-0 span coverage)\n"
              << table.render() << '\n';
  }

  if (!a.counters.empty()) {
    AsciiTable table({"counter", "samples", "min", "mean", "max", "last"});
    for (const auto& [name, c] : a.counters) {
      table.add_row({name, std::to_string(c.stats.count()), AsciiTable::num(c.stats.min(), 3),
                     AsciiTable::num(c.stats.mean(), 3), AsciiTable::num(c.stats.max(), 3),
                     AsciiTable::num(c.last, 3)});
    }
    std::cout << "Counters\n" << table.render();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const chronosync::Cli cli(argc, argv);
  // `chronoscope --check trace.json` parses as option check=trace.json (the
  // Cli treats the following token as the flag's value), so accept the path
  // from either position.
  std::string path;
  if (cli.positional().size() == 1) {
    path = cli.positional()[0];
  } else if (cli.positional().empty() && cli.has("check") && cli.get("check", "1") != "1") {
    path = cli.get("check", "");
  } else {
    std::cerr << "usage: chronoscope [--check] [--top N] <trace.json>\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in.good()) fail("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue doc;
  try {
    doc = JsonValue::parse(buffer.str());
  } catch (const std::exception& e) {
    fail("'" + path + "' is not valid JSON: " + e.what());
  }

  const Analysis a = analyze(doc);

  if (cli.has("check")) {
    std::cout << "chronoscope: OK (" << a.events << " events, " << a.span_count
              << " spans, " << a.threads.size() << " threads)\n";
    return 0;
  }

  print_summary(a, static_cast<int>(cli.get_int("top", 15)));
  return 0;
}
