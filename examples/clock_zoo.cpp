// Clock zoo: print deviation trajectories of every modeled timer technology
// (Sec. II of the paper) between two cluster nodes over a one-hour run.
//
//   $ clock_zoo [--duration 3600] [--seed 42]
#include <iomanip>
#include <iostream>

#include "analysis/deviation.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sync/offset_alignment.hpp"
#include "topology/cluster.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Duration duration = cli.get_double("duration", 3600.0);
  const RngTree rng(cli.get_seed());

  AsciiTable table({"timer", "dev @60s [us]", "dev @600s [us]", "dev @end [us]",
                    "max |dev| [us]"});
  for (const TimerSpec& spec : timer_specs::all()) {
    const Placement pl = pinning::inter_node(clusters::xeon_rwth(), 2);
    ClockEnsemble ens(pl, spec, rng.child(spec.name));

    // Align initial offsets (the paper's step (i)), then watch the drift.
    std::vector<Duration> offsets;
    for (Rank r = 0; r < 2; ++r) {
      offsets.push_back(ens.clock(0).local_time(0.0) - ens.clock(r).local_time(0.0));
    }
    OffsetAlignment align(std::move(offsets));
    const DeviationSeries s = sample_deviations(ens, align, duration, 10.0);

    auto at_time = [&](Time t) {
      const auto idx = static_cast<std::size_t>(t / 10.0);
      return idx < s.per_rank[1].size() ? s.per_rank[1][idx] : s.per_rank[1].back();
    };
    table.add_row({spec.name, AsciiTable::num(to_us(at_time(60.0)), 3),
                   AsciiTable::num(to_us(at_time(600.0)), 3),
                   AsciiTable::num(to_us(s.per_rank[1].back()), 3),
                   AsciiTable::num(to_us(max_abs_deviation(s)), 3)});
  }

  std::cout << "Deviation of node 1 against node 0 after initial offset alignment\n"
            << "(run length " << duration << " s; positive = node 1 runs fast)\n\n"
            << table.render()
            << "\nNote how the NTP-disciplined software clocks change slope abruptly\n"
               "while the hardware counters drift at a nearly constant rate (Fig. 4).\n";
  return 0;
}
