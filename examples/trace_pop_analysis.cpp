// POP trace analysis: run the POP proxy under a chosen timer, write the
// trace to disk, read it back, and report clock-condition statistics under
// several corrections — the workflow of a trace-analysis tool user.
//
//   $ trace_pop_analysis [--timer tsc|gettimeofday|mpi-wtime] [--iters 200]
//                        [--out pop_trace.bin] [--seed 42]
#include <iostream>

#include "analysis/clock_condition.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sync/interpolation.hpp"
#include "sync/offset_alignment.hpp"
#include "trace/trace_io.hpp"
#include "workload/pop.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string timer_name = cli.get("timer", "tsc");
  const int iters = static_cast<int>(cli.get_int("iters", 200));
  const std::string out = cli.get("out", "pop_trace.bin");

  const TimerSpec timer = timer_specs::by_name(timer_name);

  PopConfig pop;
  pop.px = 8;
  pop.py = 4;
  pop.total_iterations = iters * 3;
  pop.traced_begin = iters;
  pop.traced_end = 2 * iters;
  pop.iter_compute = 150 * units::ms;

  JobConfig job;
  Rng pin_rng(cli.get_seed() ^ 0x9e3779b9);
  job.placement = pinning::scheduler_default(clusters::xeon_rwth(), 32, pin_rng);
  job.timer = timer;
  job.seed = cli.get_seed();

  std::cout << "Running POP proxy (32 ranks, " << iters << " traced iterations, timer "
            << timer.name << ")...\n";
  AppRunResult res = run_pop(pop, std::move(job));

  write_trace_file(res.trace, out);
  std::cout << "Trace written to " << out << " (" << res.trace.total_events()
            << " events); reading back for analysis.\n\n";
  Trace trace = read_trace_file(out);

  const auto msgs = trace.match_messages();
  const auto logical = derive_logical_messages(trace);

  AsciiTable table({"correction", "p2p reversed [%]", "p2p violations [%]",
                    "collective reversed [%]"});
  auto report = [&](const std::string& name, const TimestampArray& ts) {
    const auto rep = check_clock_condition(trace, ts, msgs, logical);
    table.add_row({name, AsciiTable::num(rep.p2p_reversed_pct(), 3),
                   AsciiTable::num(rep.p2p_violation_pct(), 3),
                   AsciiTable::num(rep.logical_reversed_pct(), 3)});
  };

  report("raw local clocks", TimestampArray::from_local(trace));
  report("offset alignment", apply_correction(trace, OffsetAlignment::from_store(res.offsets)));
  report("linear interpolation",
         apply_correction(trace, LinearInterpolation::from_store(res.offsets)));

  std::cout << table.render();
  return 0;
}
