// Timeline demo: renders the paper's Fig. 2 situations — a consistent and an
// inconsistent message-passing trace — as ASCII timelines, then shows a real
// simulated run where linear interpolation leaves arrows pointing backward
// and the CLC straightens them out.
//
//   $ timeline_demo [--seed 42]
#include <iostream>

#include "common/cli.hpp"
#include "sync/clc.hpp"
#include "sync/interpolation.hpp"
#include "trace/timeline.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

namespace {

/// Builds the two-process, one-message trace of Fig. 2(a)/(b).
Trace fig2_trace(Time recv_ts) {
  Trace t(pinning::inter_node(clusters::xeon_rwth(), 2), {0.47e-6, 0.86e-6, 4.29e-6},
          "illustration");
  Event s;
  s.type = EventType::Send;
  s.peer = 1;
  s.msg_id = 0;
  s.local_ts = s.true_ts = 20e-6;
  t.events(0).push_back(s);
  Event r = s;
  r.type = EventType::Recv;
  r.peer = 0;
  r.local_ts = r.true_ts = recv_ts;
  t.events(1).push_back(r);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  TimelineOptions opt;
  opt.width = 72;

  std::cout << "Fig. 2(a): consistent message-passing event trace\n";
  Trace good = fig2_trace(40e-6);
  std::cout << render_timeline(good, TimestampArray::from_local(good), opt) << '\n';

  std::cout << "Fig. 2(b): inconsistent trace -- the message is received before it\n"
               "has been sent (the S and R glyphs swap order):\n";
  Trace bad = fig2_trace(10e-6);
  std::cout << render_timeline(bad, TimestampArray::from_local(bad), opt) << '\n';

  // A real run: drifting clocks + interpolation, before and after CLC.
  SweepConfig workload;
  workload.rounds = 60;
  workload.gap_mean = 10.0;
  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), 4);
  job.timer = timer_specs::intel_tsc();
  job.seed = cli.get_seed();
  AppRunResult res = run_sweep(workload, std::move(job));

  const auto interp =
      apply_correction(res.trace, LinearInterpolation::from_store(res.offsets));
  const auto msgs = res.trace.match_messages();
  const ReplaySchedule schedule(res.trace, msgs, derive_logical_messages(res.trace));
  const ClcResult clc = controlled_logical_clock(res.trace, schedule, interp);

  // Zoom into the window around the worst message.
  Time zoom_lo = 0.0, zoom_hi = 0.0;
  Duration worst = kTimeInfinity;
  for (const auto& m : msgs) {
    const Duration flight = interp.at(m.recv) - interp.at(m.send);
    if (flight < worst) {
      worst = flight;
      zoom_lo = interp.at(m.send) - 200e-6;
      zoom_hi = interp.at(m.recv) + 400e-6;
    }
  }
  opt.start = zoom_lo;
  opt.end = zoom_hi;
  opt.max_messages = 8;

  std::cout << "Simulated run, window around the worst message after linear\n"
               "interpolation (flight " << to_us(worst) << " us):\n"
            << render_timeline(res.trace, interp, opt) << '\n'
            << "Same window after the CLC:\n"
            << render_timeline(res.trace, clc.corrected, opt);
  return 0;
}
