// CLC repair walkthrough: compares every synchronization method the paper
// surveys (Sec. V) on the same drifting-clock trace, including ground-truth
// accuracy numbers that only a simulation can provide.
//
//   $ clc_repair [--ranks 8] [--rounds 400] [--seed 42] [--parallel]
#include <iostream>
#include <memory>

#include "analysis/clock_condition.hpp"
#include "analysis/interval_stats.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sync/clc.hpp"
#include "sync/clc_parallel.hpp"
#include "sync/error_estimation.hpp"
#include "sync/interpolation.hpp"
#include "sync/offset_alignment.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  SweepConfig workload;
  workload.rounds = static_cast<int>(cli.get_int("rounds", 400));
  workload.gap_mean = 2.0;
  workload.collective_every = 40;

  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(),
                                      static_cast<int>(cli.get_int("ranks", 8)));
  job.timer = timer_specs::intel_tsc();
  job.seed = cli.get_seed();

  AppRunResult res = run_sweep(workload, std::move(job));
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);

  AsciiTable table({"method", "violations", "reversed [%]", "truth error [us]"});
  auto report = [&](const std::string& name, const TimestampArray& ts) {
    const auto rep = check_clock_condition(res.trace, ts, schedule);
    const auto err = truth_error(res.trace, ts);
    table.add_row({name, std::to_string(rep.violations()),
                   AsciiTable::num(rep.combined_reversed_pct(), 3),
                   AsciiTable::num(to_us(err.mean()), 3)});
    return ts;
  };

  report("raw local clocks", TimestampArray::from_local(res.trace));
  report("offset alignment",
         apply_correction(res.trace, OffsetAlignment::from_store(res.offsets)));
  const auto interp = report(
      "linear interpolation (Eq. 3)",
      apply_correction(res.trace, LinearInterpolation::from_store(res.offsets)));
  for (auto method : {EstimationMethod::Regression, EstimationMethod::ConvexHull,
                      EstimationMethod::MinMax}) {
    const auto corr = ErrorEstimationCorrection::build(res.trace, msgs, method);
    report("error estimation: " + to_string(method), apply_correction(res.trace, corr));
  }

  const bool parallel = cli.has("parallel");
  const ClcResult clc =
      parallel ? controlled_logical_clock_parallel(res.trace, schedule, interp)
               : controlled_logical_clock(res.trace, schedule, interp);
  report(parallel ? "interpolation + parallel CLC" : "interpolation + CLC", clc.corrected);

  std::cout << table.render() << "\nCLC repaired " << clc.violations_repaired
            << " receives (max jump " << to_us(clc.max_jump) << " us, total "
            << to_us(clc.total_jump) << " us)\n";

  const auto dist = interval_distortion(res.trace, interp, clc.corrected);
  std::cout << "interval distortion vs. interpolated input: mean "
            << to_us(dist.absolute.mean()) << " us, max " << to_us(dist.absolute.max())
            << " us over " << dist.intervals << " intervals\n";
  return 0;
}
