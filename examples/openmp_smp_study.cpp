// OpenMP SMP study: reproduce the Fig. 3 phenomenon interactively — run the
// POMP benchmark on the Itanium-like node and show violated regions, plus
// how the picture changes with thread count.
//
//   $ openmp_smp_study [--threads 4] [--regions 500] [--seed 42]
#include <iostream>

#include "analysis/omp_semantics.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "ompsim/omp_bench.hpp"
#include "sync/omp_clc.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  OmpBenchConfig cfg;
  cfg.threads = static_cast<int>(cli.get_int("threads", 4));
  cfg.regions = static_cast<int>(cli.get_int("regions", 500));
  cfg.seed = cli.get_seed();

  const OmpBenchResult res = run_omp_benchmark(cfg);
  const auto local = check_omp_semantics(res.trace, TimestampArray::from_local(res.trace));
  const auto truth = check_omp_semantics(res.trace, TimestampArray::from_truth(res.trace));
  const OmpClcResult repaired = omp_controlled_logical_clock(
      res.trace, omp_thread_placement(cfg.node, cfg.threads));
  const auto fixed = check_omp_semantics(res.trace, repaired.corrected);

  std::cout << "POMP benchmark: " << cfg.threads << " threads, " << cfg.regions
            << " parallel-for regions on " << cfg.node.name << " (" << cfg.timer.name
            << " timestamps)\n\n";

  AsciiTable table({"clock view", "any [%]", "entry [%]", "exit [%]", "barrier [%]"});
  table.add_row({"measured (local clocks)", AsciiTable::num(local.any_pct(), 1),
                 AsciiTable::num(local.entry_pct(), 1), AsciiTable::num(local.exit_pct(), 1),
                 AsciiTable::num(local.barrier_pct(), 1)});
  table.add_row({"ground truth", AsciiTable::num(truth.any_pct(), 1),
                 AsciiTable::num(truth.entry_pct(), 1), AsciiTable::num(truth.exit_pct(), 1),
                 AsciiTable::num(truth.barrier_pct(), 1)});
  table.add_row({"after OpenMP CLC", AsciiTable::num(fixed.any_pct(), 1),
                 AsciiTable::num(fixed.entry_pct(), 1), AsciiTable::num(fixed.exit_pct(), 1),
                 AsciiTable::num(fixed.barrier_pct(), 1)});
  std::cout << table.render();

  // Show one concrete violated region like the Fig. 3 screenshot.
  for (const auto& check : local.details) {
    if (!check.any()) continue;
    std::cout << "\nexample: region instance " << check.instance << " violates";
    if (check.entry_violation) std::cout << " [entry]";
    if (check.exit_violation) std::cout << " [exit]";
    if (check.barrier_violation) std::cout << " [barrier]";
    std::cout << "\nevent timeline (thread: type @ local us, offset from region start):\n";
    Time base = -1.0;
    for (std::uint32_t i = 0; i < res.trace.events(0).size(); ++i) {
      const Event& e = res.trace.events(0)[i];
      if (e.omp_instance != check.instance) continue;
      if (base < 0.0) base = e.local_ts;
      std::cout << "  t" << e.thread << ": " << to_string(e.type) << " @ "
                << AsciiTable::num(to_us(e.local_ts - base), 3) << " us\n";
    }
    break;
  }
  return 0;
}
