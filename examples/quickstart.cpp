// Quickstart: simulate a small MPI job on drifting clocks, observe clock-
// condition violations, and repair them with linear interpolation + CLC.
//
//   $ quickstart [--ranks 8] [--rounds 200] [--seed 42]
#include <iostream>

#include "analysis/clock_condition.hpp"
#include "common/cli.hpp"
#include "sync/clc.hpp"
#include "sync/interpolation.hpp"
#include "workload/sweep.hpp"

using namespace chronosync;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 8));
  const int rounds = static_cast<int>(cli.get_int("rounds", 200));

  // 1. A cluster job: one rank per node on the Xeon cluster, timestamps taken
  //    from simulated Intel TSC registers (per-node oscillators that drift).
  SweepConfig workload;
  workload.rounds = rounds;
  workload.gap_mean = 2.0;  // seconds between rounds: a ~400 s run
  workload.collective_every = 25;

  JobConfig job;
  job.placement = pinning::inter_node(clusters::xeon_rwth(), ranks);
  job.timer = timer_specs::intel_tsc();
  job.seed = cli.get_seed();

  std::cout << "Simulating " << ranks << " ranks, " << rounds << " rounds on "
            << job.timer.name << " clocks...\n";
  AppRunResult res = run_sweep(workload, std::move(job));

  // 2. Analyze the raw trace: local clocks were never synchronized.
  const auto raw = check_clock_condition(res.trace, TimestampArray::from_local(res.trace));
  std::cout << "\nraw local timestamps:\n"
            << "  p2p messages: " << raw.p2p_messages << ", reversed: " << raw.p2p_reversed
            << " (" << raw.p2p_reversed_pct() << " %)\n";

  // 3. Scalasca-style linear offset interpolation from the offset probes
  //    taken at "MPI_Init" and "MPI_Finalize" (Eq. 3 of the paper).
  const LinearInterpolation interp = LinearInterpolation::from_store(res.offsets);
  const auto interpolated = apply_correction(res.trace, interp);
  const auto lin = check_clock_condition(res.trace, interpolated);
  std::cout << "\nafter linear offset interpolation:\n"
            << "  violations: " << lin.violations() << " (p2p " << lin.p2p_violations
            << ", collective " << lin.logical_violations << ")\n";

  // 4. The Controlled Logical Clock removes whatever interpolation missed.
  const auto msgs = res.trace.match_messages();
  const auto logical = derive_logical_messages(res.trace);
  const ReplaySchedule schedule(res.trace, msgs, logical);
  const ClcResult clc = controlled_logical_clock(res.trace, schedule, interpolated);
  const auto fixed = check_clock_condition(res.trace, clc.corrected, schedule);
  std::cout << "\nafter CLC:\n"
            << "  violations: " << fixed.violations() << ", repaired " << clc.violations_repaired
            << " receives, max jump " << to_us(clc.max_jump) << " us\n";

  return fixed.violations() == 0 ? 0 : 1;
}
